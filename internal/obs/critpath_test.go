package obs

import (
	"math"
	"strings"
	"testing"
)

// buildThreeJobDAG hand-builds the trace of a 3-job chain with known
// critical structure:
//
//	job 0 [0,40]:  startup [0,6];  phase [6,40] with tasks
//	               t0 [6,25] (slot 0, off-path) and t1 [6,40] (slot 1)
//	job 1 [40,70]: startup [40,46]; phase [46,70] with one task
//	job 2 [70,100]: startup [70,76]; phase [76,100] with a same-slot
//	               chain t_a [76,90] → t_b [90,100]
//
// The critical path is: startup, t1, startup, task, startup, t_a, t_b —
// seven steps tiling [0,100] exactly.
func buildThreeJobDAG() *Trace {
	tr := NewTrace()
	prog := tr.Start(KindProgram, "program", NoSpan, 0)

	task := func(parent SpanID, name string, start, end float64, jobID, node, slot int, b Breakdown) {
		id := tr.Start(KindTask, name, parent, start)
		tr.SetAttrs(id, Attrs{JobID: jobID, Node: node, Slot: slot, Breakdown: b})
		tr.End(id, end)
	}

	j0 := tr.Start(KindJob, "load", prog, 0)
	tr.SetAttrs(j0, Attrs{JobID: 0})
	p0 := tr.Start(KindPhase, "j0/p0", j0, 6)
	task(p0, "j0/p0/t0", 6, 25, 0, 0, 0, Breakdown{CatCompute: 19})
	task(p0, "j0/p0/t1", 6, 40, 0, 1, 1, Breakdown{CatCompute: 30, CatWrite: 4})
	tr.End(p0, 40)
	tr.End(j0, 40)

	j1 := tr.Start(KindJob, "multiply", prog, 40)
	tr.SetAttrs(j1, Attrs{JobID: 1, Deps: []int{0}})
	p1 := tr.Start(KindPhase, "j1/p0", j1, 46)
	task(p1, "j1/p0/t0", 46, 70, 1, 0, 0, Breakdown{CatCompute: 24})
	tr.End(p1, 70)
	tr.End(j1, 70)

	j2 := tr.Start(KindJob, "aggregate", prog, 70)
	tr.SetAttrs(j2, Attrs{JobID: 2, Deps: []int{1}})
	p2 := tr.Start(KindPhase, "j2/p0", j2, 76)
	task(p2, "j2/p0/t0", 76, 90, 2, 0, 0, Breakdown{CatCompute: 10, CatLocalRead: 4})
	task(p2, "j2/p0/t1", 90, 100, 2, 0, 0, Breakdown{CatCompute: 10})
	tr.End(p2, 100)
	tr.End(j2, 100)

	tr.End(prog, 100)
	return tr
}

// TestCriticalPathGolden is the analyzer's golden test: the exact step
// sequence, span attribution and category totals of the hand-built DAG.
func TestCriticalPathGolden(t *testing.T) {
	cp, err := buildThreeJobDAG().CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.TotalSeconds != 100 {
		t.Fatalf("TotalSeconds = %g, want 100", cp.TotalSeconds)
	}
	want := []struct {
		name       string
		start, end float64
	}{
		{"load startup", 0, 6},
		{"j0/p0/t1", 6, 40},
		{"multiply startup", 40, 46},
		{"j1/p0/t0", 46, 70},
		{"aggregate startup", 70, 76},
		{"j2/p0/t0", 76, 90},
		{"j2/p0/t1", 90, 100},
	}
	if len(cp.Steps) != len(want) {
		t.Fatalf("got %d steps, want %d: %+v", len(cp.Steps), len(want), cp.Steps)
	}
	for i, w := range want {
		s := cp.Steps[i]
		if s.Name != w.name || math.Abs(s.Start-w.start) > 1e-9 || math.Abs(s.End-w.end) > 1e-9 {
			t.Fatalf("step %d = %q [%g,%g], want %q [%g,%g]",
				i, s.Name, s.Start, s.End, w.name, w.start, w.end)
		}
	}
	// The off-path task t0 must not appear.
	for _, s := range cp.Steps {
		if s.Name == "j0/p0/t0" {
			t.Fatal("off-critical-path task attributed")
		}
	}
	wantCat := Breakdown{}
	wantCat[CatStartup] = 18
	wantCat[CatCompute] = 74
	wantCat[CatLocalRead] = 4
	wantCat[CatWrite] = 4
	for c := Category(0); c < NumCategories; c++ {
		if math.Abs(cp.Categories[c]-wantCat[c]) > 1e-9 {
			t.Fatalf("category %s = %g, want %g", c, cp.Categories[c], wantCat[c])
		}
	}
	// Coverage invariant: categories sum to the program wall-clock.
	if math.Abs(cp.Categories.Total()-cp.TotalSeconds) > 1e-9 {
		t.Fatalf("categories sum to %g, want %g", cp.Categories.Total(), cp.TotalSeconds)
	}

	var sb strings.Builder
	if err := cp.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"critical path: 100.0s across 7 steps", "compute", "74.0", "startup", "18.0"} {
		if !strings.Contains(sb.String(), needle) {
			t.Fatalf("report missing %q:\n%s", needle, sb.String())
		}
	}
}

// TestCriticalPathGaps: when a task's start is bounded by nothing the
// analyzer records a queue step rather than losing coverage, and job
// gaps (e.g. a retried straggler's shifted start) are bridged the same
// way.
func TestCriticalPathGaps(t *testing.T) {
	tr := NewTrace()
	prog := tr.Start(KindProgram, "program", NoSpan, 0)
	j := tr.Start(KindJob, "j", prog, 0)
	tr.SetAttrs(j, Attrs{JobID: 0})
	p := tr.Start(KindPhase, "p", j, 2)
	// Task starts 3s after the phase release with no predecessor: queue.
	tk := tr.Start(KindTask, "t", p, 5)
	tr.SetAttrs(tk, Attrs{JobID: 0, Breakdown: Breakdown{CatCompute: 5}})
	tr.End(tk, 10)
	tr.End(p, 10)
	tr.End(j, 10)
	tr.End(prog, 10)

	cp, err := tr.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp.Categories.Total()-10) > 1e-9 {
		t.Fatalf("coverage lost: categories sum to %g, want 10", cp.Categories.Total())
	}
	if math.Abs(cp.Categories[CatQueue]-3) > 1e-9 {
		t.Fatalf("queue = %g, want 3", cp.Categories[CatQueue])
	}
	if math.Abs(cp.Categories[CatStartup]-2) > 1e-9 {
		t.Fatalf("startup = %g, want 2", cp.Categories[CatStartup])
	}
}

// TestCriticalPathNoProgram: analysis needs exactly one program span.
func TestCriticalPathNoProgram(t *testing.T) {
	if _, err := NewTrace().CriticalPath(); err == nil {
		t.Fatal("want error on empty trace")
	}
}
