package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildSampleTrace records a two-job run with phases, tasks on two
// node×slot tracks, and a tile-op event.
func buildSampleTrace() *Trace {
	tr := NewTrace()
	prog := tr.Start(KindProgram, "program", NoSpan, 0)
	j0 := tr.Start(KindJob, "job 0", prog, 0)
	tr.SetAttrs(j0, Attrs{JobID: 0})
	p0 := tr.Start(KindPhase, "j0/p0", j0, 6)
	t0 := tr.Start(KindTask, "j0/p0/t0", p0, 6)
	tr.SetAttrs(t0, Attrs{JobID: 0, Node: 0, Slot: 0, Flops: 100,
		LocalReadBytes: 10, WriteBytes: 20, Breakdown: Breakdown{CatCompute: 14}})
	tr.Event(t0, "gemm x3", 6)
	tr.End(t0, 20)
	t1 := tr.Start(KindTask, "j0/p0/t1", p0, 6)
	tr.SetAttrs(t1, Attrs{JobID: 0, Node: 1, Slot: 2, Flops: 50})
	tr.End(t1, 18)
	tr.End(p0, 20)
	tr.End(j0, 20)
	j1 := tr.Start(KindJob, "job 1", prog, 20)
	tr.SetAttrs(j1, Attrs{JobID: 1, Deps: []int{0}})
	p1 := tr.Start(KindPhase, "j1/p0", j1, 26)
	t2 := tr.Start(KindTask, "j1/p0/t0", p1, 26)
	tr.SetAttrs(t2, Attrs{JobID: 1, Node: 1, Slot: 3})
	tr.End(t2, 40)
	tr.End(p1, 40)
	tr.End(j1, 40)
	tr.End(prog, 40)
	return tr
}

// TestChromeTraceRoundTrip is the schema test: the export must be valid
// JSON in the trace-event format, every complete event must carry a
// resolvable span/parent id, and every span must nest inside its parent
// both in time and in the recorded hierarchy.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	spans := map[int64]Span{}
	for _, s := range tr.Spans() {
		spans[int64(s.ID)] = s
	}
	nComplete, nMeta, nInstant := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			nMeta++
			continue
		case "i":
			nInstant++
			continue
		case "X":
			nComplete++
		default:
			t.Fatalf("unexpected event phase %q", ev.Phase)
		}
		id := int64(ev.Args["span_id"].(float64))
		parent := int64(ev.Args["parent_id"].(float64))
		s, ok := spans[id]
		if !ok {
			t.Fatalf("event %q carries unknown span_id %d", ev.Name, id)
		}
		if int64(s.Parent) != parent {
			t.Fatalf("span %d parent mismatch: export %d, trace %d", id, parent, s.Parent)
		}
		if s.Parent != NoSpan {
			p := spans[int64(s.Parent)]
			if s.Start < p.Start-1e-9 || s.End > p.End+1e-9 {
				t.Fatalf("span %q [%g,%g] escapes parent %q [%g,%g]",
					s.Name, s.Start, s.End, p.Name, p.Start, p.End)
			}
		}
		// Times are microseconds of virtual time.
		if ev.TS != s.Start*1e6 || ev.Dur != (s.End-s.Start)*1e6 {
			t.Fatalf("span %q exported ts/dur %g/%g, want %g/%g",
				s.Name, ev.TS, ev.Dur, s.Start*1e6, (s.End-s.Start)*1e6)
		}
		// Track assignment: tasks on (node+1, slot); control spans on pid 0.
		if s.Kind == KindTask {
			if ev.PID != s.Attrs.Node+1 || ev.TID != s.Attrs.Slot {
				t.Fatalf("task %q on track (%d,%d), want (%d,%d)",
					s.Name, ev.PID, ev.TID, s.Attrs.Node+1, s.Attrs.Slot)
			}
		} else if ev.PID != schedulerPID {
			t.Fatalf("control span %q on pid %d, want %d", s.Name, ev.PID, schedulerPID)
		}
	}
	if nComplete != len(spans) {
		t.Fatalf("exported %d complete events for %d spans", nComplete, len(spans))
	}
	if nInstant != 1 {
		t.Fatalf("exported %d instant events, want 1", nInstant)
	}
	if nMeta == 0 {
		t.Fatal("no track-naming metadata exported")
	}

	// Export determinism: re-exporting yields identical bytes.
	var again bytes.Buffer
	if err := tr.WriteChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("repeated exports differ byte-wise")
	}
}
