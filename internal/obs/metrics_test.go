package obs

import (
	"strings"
	"testing"
)

// TestRegistryExposition checks the Prometheus text format: HELP/TYPE
// preambles, sorted labeled series, and cumulative histogram buckets
// with +Inf, _sum and _count.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "widgets made")
	c.Add(2, Label{"kind", "b"})
	c.Add(3, Label{"kind", "a"})
	c.Add(1, Label{"kind", "b"})
	r.Gauge("temp", "temperature").Set(36.5)
	h := r.Histogram("lat_seconds", "latency", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)

	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP widgets_total widgets made
# TYPE widgets_total counter
widgets_total{kind="a"} 3
widgets_total{kind="b"} 3
# HELP temp temperature
# TYPE temp gauge
temp 36.5
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="1"} 1
lat_seconds_bucket{le="5"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 103.5
lat_seconds_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSnapshotFromTrace derives the standard metrics from a recorded
// trace and spot-checks the derived ratios and totals.
func TestSnapshotFromTrace(t *testing.T) {
	tr := NewTrace()
	prog := tr.Start(KindProgram, "program", NoSpan, 0)
	job := tr.Start(KindJob, "job 0", prog, 0)
	ph := tr.Start(KindPhase, "p0", job, 0)
	t1 := tr.Start(KindTask, "t0", ph, 0)
	tr.SetAttrs(t1, Attrs{
		Flops: 1000, LocalReadBytes: 60, RackReadBytes: 20, RemoteReadBytes: 20,
		CacheReadBytes: 100, WriteBytes: 40, Retries: 2, QueueSec: 1, RecoverySec: 1.5,
		Breakdown: Breakdown{CatCompute: 3, CatWrite: 1, CatRecovery: 1.5},
	})
	tr.End(t1, 4)
	tr.End(ph, 4)
	tr.End(job, 4)
	tr.End(prog, 10)

	var sb strings.Builder
	if err := Snapshot(tr).Write(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"cumulon_program_seconds 10",
		"cumulon_jobs_total 1",
		"cumulon_tasks_total 1",
		"cumulon_task_retries_total 2",
		"cumulon_recovery_seconds_total 1.5",
		`cumulon_task_category_seconds_total{category="recovery"} 1.5`,
		`cumulon_read_bytes_total{class="local"} 60`,
		`cumulon_read_bytes_total{class="cache"} 100`,
		"cumulon_write_bytes_total 40",
		"cumulon_flops_total 1000",
		`cumulon_task_category_seconds_total{category="compute"} 3`,
		"cumulon_read_locality_ratio 0.6",
		"cumulon_cache_hit_ratio 0.5",
		`cumulon_task_seconds_bucket{le="5"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, got)
		}
	}
}
