package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildRegistry populates a registry the same way twice — but with
// label and observation orders shuffled between builds — so the golden
// comparison proves the renderers sort rather than echo insertion
// order.
func buildRegistry(variant int) *Registry {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs by tenant")
	g := r.Gauge("queue_depth", "queued jobs")
	h := r.Histogram("wait_seconds", "queue wait", []float64{0.1, 1, 10})

	tenants := []string{"acme", "zeta", "mid"}
	if variant%2 == 1 {
		tenants = []string{"zeta", "mid", "acme"}
	}
	// Same totals regardless of the add order.
	amount := map[string]float64{"acme": 1, "zeta": 2, "mid": 3}
	for _, tn := range tenants {
		c.Add(amount[tn], Label{Key: "tenant", Value: tn})
		c.Add(10, Label{Key: "tenant", Value: tn})
	}
	g.Set(7)
	obs := []float64{0.05, 0.5, 5, 50}
	if variant%2 == 1 {
		obs = []float64{50, 5, 0.5, 0.05}
	}
	for _, v := range obs {
		h.Observe(v)
	}
	return r
}

// TestRegistryTextByteStable: the Prometheus text rendering must be
// byte-identical for identically populated registries, independent of
// insertion order.
func TestRegistryTextByteStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildRegistry(0).Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildRegistry(1).Write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("text rendering depends on insertion order:\nA:\n%s\nB:\n%s", a.String(), b.String())
	}
}

// TestRegistryJSONByteStable: same for the JSON export the server
// serves at /metrics.json.
func TestRegistryJSONByteStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildRegistry(0).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildRegistry(1).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("JSON rendering depends on insertion order:\nA:\n%s\nB:\n%s", a.String(), b.String())
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("WriteJSON emitted invalid JSON:\n%s", a.String())
	}
	// Sorted label values must appear in sorted order in the byte stream.
	out := a.String()
	if strings.Index(out, "acme") > strings.Index(out, "zeta") {
		t.Fatal("samples are not sorted by label")
	}
}

// TestRegistryJSONGolden pins the exact shape of the JSON export so
// accidental format drift (key renames, indent changes, map ordering)
// fails loudly.
func TestRegistryJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "requests").Add(3, Label{Key: "tenant", Value: "acme"})
	r.Gauge("depth", "queue depth").Set(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "metrics": [
    {
      "name": "requests_total",
      "type": "counter",
      "help": "requests",
      "samples": [
        {
          "labels": "{tenant=\"acme\"}",
          "value": 3
        }
      ]
    },
    {
      "name": "depth",
      "type": "gauge",
      "help": "queue depth",
      "samples": [
        {
          "value": 2
        }
      ]
    }
  ]
}
`
	if buf.String() != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}
