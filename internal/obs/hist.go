package obs

import "math"

// LogBuckets returns fixed log-spaced histogram bounds spanning
// 10^minExp .. 10^maxExp with perDecade bounds per decade, each rounded
// to three significant digits so the rendered bound strings are short
// and byte-stable. The job service's latency histograms all share one
// such layout (LatencyBuckets), which keeps every tenant's series
// directly comparable and the Prometheus/JSON renderings deterministic.
func LogBuckets(minExp, maxExp, perDecade int) []float64 {
	if perDecade <= 0 {
		perDecade = 1
	}
	var out []float64
	for k := minExp * perDecade; k <= maxExp*perDecade; k++ {
		out = append(out, round3(math.Pow(10, float64(k)/float64(perDecade))))
	}
	return out
}

// round3 rounds to three significant digits.
func round3(v float64) float64 {
	if v == 0 {
		return 0
	}
	exp := math.Floor(math.Log10(math.Abs(v)))
	scale := math.Pow(10, exp-2)
	return math.Round(v/scale) * scale
}

// LatencyBuckets is the standard latency layout of the job service:
// 1ms to 1000s, three buckets per decade (…, 0.1, 0.215, 0.464, 1, …).
// Queue-wait, compile, run and end-to-end histograms all use it.
var LatencyBuckets = LogBuckets(-3, 3, 3)

// QuantileFromBuckets estimates the q-quantile of a histogram from its
// bucket upper bounds and *cumulative* counts (len(cumulative) ==
// len(bounds)+1; the last entry is the +Inf bucket's total). The
// estimate interpolates linearly inside the target bucket, Prometheus
// histogram_quantile style: the true quantile is somewhere in the
// bucket, and a uniform within-bucket assumption is the standard
// answer.
//
// Boundary behavior: q clamps into [0, 1]; empty buckets are never the
// target (the rank is carried to the first bucket that actually holds
// samples), so q=0 returns the lower bound of the first nonempty bucket
// — the best lower estimate of the minimum — rather than a bound an
// empty first bucket would fabricate, and q=1 returns the upper bound
// of the last nonempty finite bucket without relying on the +Inf
// fallback. Returns 0 for an empty histogram; a rank held by the +Inf
// bucket returns the largest finite bound. HistSeries.Quantile shares
// this exact computation, so clients consuming /metrics.json (the load
// generator's SLO report) agree with the server's own quantiles at
// every boundary.
func QuantileFromBuckets(bounds []float64, cumulative []uint64, q float64) float64 {
	if len(cumulative) == 0 || len(cumulative) != len(bounds)+1 {
		return 0
	}
	total := cumulative[len(cumulative)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	prev := uint64(0)
	for i, ub := range bounds {
		cur := cumulative[i]
		// The target bucket must both reach the rank and be nonempty:
		// for any 0 < rank <= total the first bucket reaching it is
		// nonempty automatically, and for rank 0 the emptiness check is
		// what skips leading empty buckets instead of matching bucket 0
		// unconditionally.
		if cur > prev && float64(cur) >= rank {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (ub-lo)*(rank-float64(prev))/float64(cur-prev)
		}
		prev = cur
	}
	// Rank held by the +Inf bucket: the best bounded answer is the
	// largest finite bound.
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}
