package obs

import (
	"math"
	"strings"
	"testing"
)

func recordedRun(progSec float64, jobSecs map[int]float64) *Trace {
	tr := NewTrace()
	prog := tr.Start(KindProgram, "program", NoSpan, 0)
	clock := 0.0
	for id := 0; id < 8; id++ {
		sec, ok := jobSecs[id]
		if !ok {
			continue
		}
		j := tr.Start(KindJob, "job", prog, clock)
		tr.SetAttrs(j, Attrs{JobID: id})
		clock += sec
		tr.End(j, clock)
	}
	tr.End(prog, progSec)
	return tr
}

// TestDiffTraces aligns predicted and actual job spans by job id and
// checks the relative-error arithmetic, including one-sided jobs.
func TestDiffTraces(t *testing.T) {
	actual := recordedRun(100, map[int]float64{0: 40, 1: 50, 3: 10})
	predicted := recordedRun(90, map[int]float64{0: 44, 1: 40, 2: 6})

	d, err := DiffTraces(actual, predicted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.ProgramRelErr-(-0.1)) > 1e-9 {
		t.Fatalf("program rel err = %g, want -0.1", d.ProgramRelErr)
	}
	if len(d.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(d.Rows))
	}
	byID := map[int]DiffRow{}
	for _, r := range d.Rows {
		byID[r.JobID] = r
	}
	if e := byID[0].RelErr; math.Abs(e-0.1) > 1e-9 {
		t.Fatalf("job 0 rel err = %g, want +0.1", e)
	}
	if e := byID[1].RelErr; math.Abs(e-(-0.2)) > 1e-9 {
		t.Fatalf("job 1 rel err = %g, want -0.2", e)
	}
	if !byID[2].MissingActual || !math.IsNaN(byID[2].RelErr) {
		t.Fatalf("job 2 should be missing on the actual side: %+v", byID[2])
	}
	if !byID[3].MissingPredicted {
		t.Fatalf("job 3 should be missing on the predicted side: %+v", byID[3])
	}
	if math.Abs(d.WorstJobRelErr-0.2) > 1e-9 {
		t.Fatalf("worst job rel err = %g, want 0.2", d.WorstJobRelErr)
	}

	var sb strings.Builder
	if err := d.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, needle := range []string{"predicted vs actual", "program", "n/a", "worst job 20.0%"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("diff table missing %q:\n%s", needle, out)
		}
	}
}

func TestDiffTracesRequiresPrograms(t *testing.T) {
	if _, err := DiffTraces(NewTrace(), recordedRun(1, nil)); err == nil {
		t.Fatal("want error for actual trace without program span")
	}
	if _, err := DiffTraces(recordedRun(1, nil), NewTrace()); err == nil {
		t.Fatal("want error for predicted trace without program span")
	}
}
