// Package chaos defines deterministic fault schedules for the engines: a
// Schedule describes when datanodes crash (in virtual time), how often
// task attempts fault, and how often reads fail transiently; an Injector
// answers the engines' "does this attempt fail?" questions as a pure
// function of the schedule seed and the event's coordinates.
//
// Determinism is the point. Cloud failures are random in production but
// must be reproducible in a simulation: the same schedule against the
// same program yields the same crashes, the same retries and the same
// recovery traffic regardless of the compute backend or the host's
// GOMAXPROCS, so fault-recovery runs can be diffed byte-for-byte against
// each other and asserted bit-identical to a fault-free oracle. Fault
// decisions therefore use a seeded hash of the task coordinates, never a
// shared random stream whose consumption order could vary.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NodeCrash kills one datanode at a virtual time. The engine fires the
// crash at the first scheduling decision at or after At: the DFS marks
// the node dead and re-replicates its blocks, and the node's task slots
// are lost for the rest of the run.
type NodeCrash struct {
	Node int     `json:"node"`
	At   float64 `json:"at_sec"`
}

// TargetFault pins faults to one task: the first Attempts attempts of
// the matching task fail. A negative Job, Phase or Index matches any
// value, so tests can fail, say, every task's first attempt. Targeted
// faults exist for tests and debugging; production-shaped chaos uses the
// probabilistic knobs.
type TargetFault struct {
	Job, Phase, Index int
	Attempts          int
}

func (t TargetFault) matches(job, phase, index int) bool {
	return (t.Job < 0 || t.Job == job) &&
		(t.Phase < 0 || t.Phase == phase) &&
		(t.Index < 0 || t.Index == index)
}

// Schedule is one deterministic fault scenario. The zero value (and a
// nil *Schedule) injects nothing.
type Schedule struct {
	// Seed drives every probabilistic decision. Two schedules with the
	// same knobs but different seeds fault different tasks.
	Seed int64
	// Crashes lists datanode kills by virtual time.
	Crashes []NodeCrash
	// TaskFaultProb is the per-attempt probability that a task attempt
	// fails before doing any work (lost container, preempted JVM).
	TaskFaultProb float64
	// ReadFaultProb is the per-attempt probability that a task attempt
	// dies on a transient read error of its first input (flaky datanode
	// connection). Decided from the input path, so the same logical read
	// faults identically however the attempt was scheduled.
	ReadFaultProb float64
	// Targets pins additional deterministic faults to specific tasks.
	Targets []TargetFault
	// KillProgramAt, when positive, kills the whole program at the first
	// job released at or after this virtual time: the engine aborts with
	// a ProgramKilled error instead of starting that job. Paired with
	// program-level checkpointing, this is the crash half of crash-resume
	// testing — a later run resumes from the last checkpoint and must
	// finish bit-identically to an uninterrupted run.
	KillProgramAt float64
}

// Validate checks the schedule's knobs are sane.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for _, c := range s.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("chaos: negative crash node %d", c.Node)
		}
		if c.At < 0 {
			return fmt.Errorf("chaos: negative crash time %g", c.At)
		}
	}
	if s.TaskFaultProb < 0 || s.TaskFaultProb > 1 {
		return fmt.Errorf("chaos: taskfault %g outside [0,1]", s.TaskFaultProb)
	}
	if s.ReadFaultProb < 0 || s.ReadFaultProb > 1 {
		return fmt.Errorf("chaos: readfault %g outside [0,1]", s.ReadFaultProb)
	}
	if s.KillProgramAt < 0 {
		return fmt.Errorf("chaos: negative kill-program time %g", s.KillProgramAt)
	}
	return nil
}

// String renders the schedule in the Parse syntax.
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	for _, c := range s.Crashes {
		parts = append(parts, fmt.Sprintf("kill=%d@%s", c.Node, strconv.FormatFloat(c.At, 'g', -1, 64)))
	}
	if s.TaskFaultProb > 0 {
		parts = append(parts, fmt.Sprintf("taskfault=%s", strconv.FormatFloat(s.TaskFaultProb, 'g', -1, 64)))
	}
	if s.ReadFaultProb > 0 {
		parts = append(parts, fmt.Sprintf("readfault=%s", strconv.FormatFloat(s.ReadFaultProb, 'g', -1, 64)))
	}
	if s.KillProgramAt > 0 {
		parts = append(parts, fmt.Sprintf("kill-program@%s", strconv.FormatFloat(s.KillProgramAt, 'g', -1, 64)))
	}
	return strings.Join(parts, ",")
}

// Parse reads a schedule from the CLI flag syntax: comma-separated
// key=value pairs,
//
//	seed=7,kill=3@120,kill=5@300.5,taskfault=0.02,readfault=0.01
//
// where kill=NODE@SECONDS may repeat. An empty spec is a nil schedule.
func Parse(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := &Schedule{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if atStr, ok := strings.CutPrefix(part, "kill-program@"); ok {
			at, err := strconv.ParseFloat(atStr, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad kill-program time %q: %w", atStr, err)
			}
			s.KillProgramAt = at
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: %q is not key=value", part)
		}
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %w", val, err)
			}
			s.Seed = v
		case "kill":
			nodeStr, atStr, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("chaos: kill wants NODE@SECONDS, got %q", val)
			}
			node, err := strconv.Atoi(nodeStr)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad kill node %q: %w", nodeStr, err)
			}
			at, err := strconv.ParseFloat(atStr, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad kill time %q: %w", atStr, err)
			}
			s.Crashes = append(s.Crashes, NodeCrash{Node: node, At: at})
		case "taskfault":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad taskfault %q: %w", val, err)
			}
			s.TaskFaultProb = v
		case "readfault":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad readfault %q: %w", val, err)
			}
			s.ReadFaultProb = v
		default:
			return nil, fmt.Errorf("chaos: unknown key %q (want seed, kill, taskfault, readfault or kill-program@T)", key)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Injector answers fault questions for one run of one engine. Crash
// delivery is stateful (each crash fires once, in time order); the
// fault predicates are pure. All methods are nil-safe: a nil Injector
// injects nothing, so engines can hold one unconditionally.
type Injector struct {
	s       *Schedule
	crashes []NodeCrash // sorted by At, ties by declaration order
	next    int
}

// NewInjector builds an injector for the schedule; nil in, nil out.
func NewInjector(s *Schedule) *Injector {
	if s == nil {
		return nil
	}
	crashes := append([]NodeCrash(nil), s.Crashes...)
	sort.SliceStable(crashes, func(i, j int) bool { return crashes[i].At < crashes[j].At })
	return &Injector{s: s, crashes: crashes}
}

// NextCrash pops the earliest undelivered crash due at or before the
// virtual time now. Callers loop until ok is false to drain coincident
// crashes.
func (in *Injector) NextCrash(now float64) (NodeCrash, bool) {
	if in == nil || in.next >= len(in.crashes) || in.crashes[in.next].At > now {
		return NodeCrash{}, false
	}
	c := in.crashes[in.next]
	in.next++
	return c, true
}

// Delivered returns how many crashes have been delivered so far.
// Checkpoint manifests record it so restore can realign delivery state.
func (in *Injector) Delivered() int {
	if in == nil {
		return 0
	}
	return in.next
}

// SkipDelivered marks the first n crashes as already delivered (restore
// path: those crashes fired before the checkpoint and their effects are
// encoded in the manifest's dead-node and placement state).
func (in *Injector) SkipDelivered(n int) {
	if in == nil {
		return
	}
	if n > len(in.crashes) {
		n = len(in.crashes)
	}
	if n > in.next {
		in.next = n
	}
}

// KillProgramAt returns the schedule's program-kill time (0 = none).
func (in *Injector) KillProgramAt() float64 {
	if in == nil {
		return 0
	}
	return in.s.KillProgramAt
}

// CrashedBefore counts the crashes scheduled strictly before the virtual
// time t, independent of delivery state (the coarse MapReduce baseline
// uses it to shrink the usable cluster for later jobs).
func (in *Injector) CrashedBefore(t float64) int {
	if in == nil {
		return 0
	}
	n := 0
	for _, c := range in.crashes {
		if c.At < t {
			n++
		}
	}
	return n
}

// TaskFault reports whether the given task attempt fails before doing
// any work. Pure in (seed, job, phase, index, attempt).
func (in *Injector) TaskFault(job, phase, index, attempt int) bool {
	if in == nil {
		return false
	}
	for _, t := range in.s.Targets {
		if t.matches(job, phase, index) && attempt < t.Attempts {
			return true
		}
	}
	if in.s.TaskFaultProb <= 0 {
		return false
	}
	h := hashMix(uint64(in.s.Seed), kindTask, mix(job), mix(phase), mix(index), mix(attempt))
	return unit(finalize(h)) < in.s.TaskFaultProb
}

// ReadFault reports whether the given task attempt dies on a transient
// read error of the input at path. Pure in (seed, path, job, phase,
// index, attempt); an empty path (a task that reads nothing) never
// faults.
func (in *Injector) ReadFault(path string, job, phase, index, attempt int) bool {
	if in == nil || in.s.ReadFaultProb <= 0 || path == "" {
		return false
	}
	h := hashMix(uint64(in.s.Seed), kindRead, mix(job), mix(phase), mix(index), mix(attempt))
	for i := 0; i < len(path); i++ {
		h = step(h, uint64(path[i]))
	}
	return unit(finalize(h)) < in.s.ReadFaultProb
}

const (
	kindTask uint64 = 0x7461736b // "task"
	kindRead uint64 = 0x72656164 // "read"

	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// mix folds a signed int into a hashable word without collapsing small
// negatives onto small positives.
func mix(v int) uint64 { return uint64(int64(v)) * 0x9e3779b97f4a7c15 }

func step(h, b uint64) uint64 { return (h ^ b) * fnvPrime }

// hashMix FNV-folds the parts byte by byte; callers finalize() the
// running hash once all input (including any variable-length tail) is in.
func hashMix(parts ...uint64) uint64 {
	h := fnvOffset
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h = step(h, (p>>(8*i))&0xff)
		}
	}
	return h
}

// finalize avalanches the hash (splitmix64 tail) so every input bit
// reaches every output bit — FNV alone diffuses only upward, which would
// leave the high bits (the ones a probability threshold looks at)
// insensitive to late input bytes.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
