package chaos

import (
	"math"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7,kill=3@120,kill=5@300.5,taskfault=0.02,readfault=0.01"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.Crashes) != 2 || s.TaskFaultProb != 0.02 || s.ReadFaultProb != 0.01 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Crashes[1] != (NodeCrash{Node: 5, At: 300.5}) {
		t.Fatalf("crash[1] = %+v", s.Crashes[1])
	}
	if got := s.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != spec {
		t.Fatalf("round trip = %q", s2.String())
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	s, err := Parse("   ")
	if err != nil || s != nil {
		t.Fatalf("empty spec: %v, %v", s, err)
	}
	for _, bad := range []string{
		"seed",            // not key=value
		"seed=x",          // bad int
		"kill=3",          // missing @time
		"kill=a@1",        // bad node
		"kill=3@x",        // bad time
		"kill=-1@5",       // negative node
		"kill=1@-5",       // negative time
		"taskfault=1.5",   // out of range
		"readfault=-0.1",  // out of range
		"frobnicate=true", // unknown key
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in != NewInjector(nil) {
		t.Fatal("NewInjector(nil) should be nil")
	}
	if in.TaskFault(0, 0, 0, 0) || in.ReadFault("/a", 0, 0, 0, 0) {
		t.Fatal("nil injector faulted")
	}
	if _, ok := in.NextCrash(math.MaxFloat64); ok {
		t.Fatal("nil injector crashed")
	}
	if in.CrashedBefore(math.MaxFloat64) != 0 {
		t.Fatal("nil injector counted crashes")
	}
}

func TestNextCrashOrderedDelivery(t *testing.T) {
	in := NewInjector(&Schedule{Crashes: []NodeCrash{{Node: 2, At: 50}, {Node: 1, At: 10}, {Node: 3, At: 50}}})
	if _, ok := in.NextCrash(5); ok {
		t.Fatal("crash before its time")
	}
	c, ok := in.NextCrash(10)
	if !ok || c.Node != 1 {
		t.Fatalf("first crash = %+v, %v", c, ok)
	}
	// Coincident crashes drain in declaration order.
	c, ok = in.NextCrash(60)
	if !ok || c.Node != 2 {
		t.Fatalf("second crash = %+v, %v", c, ok)
	}
	c, ok = in.NextCrash(60)
	if !ok || c.Node != 3 {
		t.Fatalf("third crash = %+v, %v", c, ok)
	}
	if _, ok := in.NextCrash(math.MaxFloat64); ok {
		t.Fatal("crash after drain")
	}
	if got := in.CrashedBefore(50); got != 1 {
		t.Fatalf("CrashedBefore(50) = %d, want 1 (strict)", got)
	}
	if got := in.CrashedBefore(51); got != 3 {
		t.Fatalf("CrashedBefore(51) = %d, want 3", got)
	}
}

func TestTargetFaults(t *testing.T) {
	in := NewInjector(&Schedule{Targets: []TargetFault{
		{Job: 0, Phase: 0, Index: 0, Attempts: 2},
		{Job: 1, Phase: -1, Index: -1, Attempts: 1},
	}})
	if !in.TaskFault(0, 0, 0, 0) || !in.TaskFault(0, 0, 0, 1) {
		t.Fatal("targeted attempts should fault")
	}
	if in.TaskFault(0, 0, 0, 2) {
		t.Fatal("attempt past budget should succeed")
	}
	if in.TaskFault(0, 0, 1, 0) {
		t.Fatal("untargeted task faulted")
	}
	if !in.TaskFault(1, 3, 9, 0) || in.TaskFault(1, 3, 9, 1) {
		t.Fatal("wildcard target wrong")
	}
}

// Probabilistic decisions must be pure functions of the coordinates —
// repeat calls agree, distinct seeds disagree somewhere, and the
// empirical rate tracks the configured probability.
func TestHashFaultDeterminismAndRate(t *testing.T) {
	const p = 0.2
	a := NewInjector(&Schedule{Seed: 1, TaskFaultProb: p, ReadFaultProb: p})
	b := NewInjector(&Schedule{Seed: 1, TaskFaultProb: p, ReadFaultProb: p})
	other := NewInjector(&Schedule{Seed: 2, TaskFaultProb: p})
	hits, diff := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		got := a.TaskFault(i%7, i%3, i, 0)
		if got != b.TaskFault(i%7, i%3, i, 0) {
			t.Fatal("same seed disagreed")
		}
		if a.ReadFault("/x/y", i%7, i%3, i, 0) != b.ReadFault("/x/y", i%7, i%3, i, 0) {
			t.Fatal("same seed disagreed on read")
		}
		if got {
			hits++
		}
		if got != other.TaskFault(i%7, i%3, i, 0) {
			diff++
		}
	}
	rate := float64(hits) / n
	if rate < p-0.05 || rate > p+0.05 {
		t.Fatalf("empirical fault rate %.3f far from %.2f", rate, p)
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical decisions")
	}
}

func TestReadFaultDependsOnPath(t *testing.T) {
	in := NewInjector(&Schedule{Seed: 9, ReadFaultProb: 0.5})
	if in.ReadFault("", 0, 0, 0, 0) {
		t.Fatal("empty path must never fault")
	}
	diff := false
	for i := 0; i < 64 && !diff; i++ {
		diff = in.ReadFault("/a", 0, 0, i, 0) != in.ReadFault("/b", 0, 0, i, 0)
	}
	if !diff {
		t.Fatal("path never influenced the decision")
	}
}
