package bench

import (
	"io"
	"strings"
	"testing"
)

// sharedResults runs the full suite once for all shape assertions.
var sharedResults map[string]*Result

func results(t *testing.T) map[string]*Result {
	t.Helper()
	if sharedResults == nil {
		s := NewSuite(42)
		res, err := s.RunAll(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		sharedResults = res
	}
	return sharedResults
}

func check(t *testing.T, r *Result, key string) float64 {
	t.Helper()
	v, ok := r.Checks[key]
	if !ok {
		t.Fatalf("%s: missing check %q (have %v)", r.Table.ID, key, r.Checks)
	}
	return v
}

func TestE01Shape(t *testing.T) {
	r := results(t)["E01"]
	if check(t, r, "types") < 4 {
		t.Fatal("catalog too small")
	}
	if len(r.Table.Rows) != int(r.Checks["types"]) {
		t.Fatal("row count mismatch")
	}
}

func TestE02Shape(t *testing.T) {
	r := results(t)["E02"]
	// GNMF compiles to a handful of jobs per iteration, far fewer than
	// one per operator.
	if jobs := check(t, r, "jobs:gnmf-80000x40000x10-i1"); jobs < 4 || jobs > 12 {
		t.Fatalf("gnmf jobs: %v", jobs)
	}
}

// E03/E04: Cumulon beats the MapReduce baselines, and the GNMF gap is at
// least ~2x (the paper's headline engine result).
func TestE03CumulonBeatsMR(t *testing.T) {
	r := results(t)["E03"]
	for _, n := range []string{"8192", "16384", "32768", "65536"} {
		if sp := check(t, r, "speedup:"+n); sp < 1.3 {
			t.Fatalf("n=%s: speedup %v below 1.3", n, sp)
		}
	}
}

func TestE04GNMFSpeedup(t *testing.T) {
	r := results(t)["E04"]
	for _, m := range []string{"20000", "40000", "80000"} {
		if sp := check(t, r, "speedup:"+m); sp < 2 {
			t.Fatalf("m=%s: GNMF speedup %v below 2", m, sp)
		}
		if check(t, r, "jobs:cumulon:"+m) >= check(t, r, "jobs:mr:"+m) {
			t.Fatal("Cumulon should run fewer jobs than MR")
		}
	}
}

// E05: splitting helps massively over serial execution, and on skinny
// products the best k-split is interior (k-splitting helps, but
// unboundedly fine k-splits drown in aggregation I/O).
func TestE05SplitShape(t *testing.T) {
	r := results(t)["E05"]
	if check(t, r, "best") >= check(t, r, "serial")/4 {
		t.Fatal("good splits should beat serial by >4x on 16 slots")
	}
	bestCk := check(t, r, "skinny:bestCk")
	if bestCk <= 1 {
		t.Fatal("skinny product should want ck > 1")
	}
	if check(t, r, "skinny:best") >= check(t, r, "skinny:ck1") {
		t.Fatal("k-splitting should beat ck=1 on the skinny product")
	}
}

// E06: the best slot count is at or above the core count (4 on
// m1.xlarge) but oversubscription eventually hurts.
func TestE06SlotShape(t *testing.T) {
	r := results(t)["E06"]
	best := check(t, r, "bestSlots:matmul")
	if best < 3 || best > 6 {
		t.Fatalf("matmul best slots %v outside [3,6]", best)
	}
	if check(t, r, "tbest:matmul") >= check(t, r, "t1:matmul") {
		t.Fatal("tuned slots should beat 1 slot")
	}
}

// E07/E08: model and simulator accuracy in the ~10% band the paper
// reports.
func TestE07ModelAccuracy(t *testing.T) {
	r := results(t)["E07"]
	for k, v := range r.Checks {
		if strings.HasPrefix(k, "mre:") && v > 0.15 {
			t.Fatalf("%s: mean relative error %v above 0.15", k, v)
		}
	}
}

func TestE08SimAccuracy(t *testing.T) {
	r := results(t)["E08"]
	if w := check(t, r, "worst"); w > 0.25 {
		t.Fatalf("worst prediction error %v above 0.25", w)
	}
}

// E09: times fall with cluster size; RSVD reaches a solid speedup.
func TestE09Scaling(t *testing.T) {
	r := results(t)["E09"]
	if check(t, r, "gnmf:32") >= check(t, r, "gnmf:2") {
		t.Fatal("GNMF not faster on 32 nodes than on 2")
	}
	if sp := check(t, r, "rsvdSpeedup:32"); sp < 4 {
		t.Fatalf("RSVD speedup at 32 nodes only %v", sp)
	}
}

// E10: cost versus deadline is a non-increasing staircase.
func TestE10CostStaircase(t *testing.T) {
	r := results(t)["E10"]
	if _, bad := r.Checks["nonmonotone"]; bad {
		t.Fatal("cost increased as the deadline loosened")
	}
	if check(t, r, "cost:0.5h") <= check(t, r, "cost:16h") {
		t.Fatal("tight deadlines should cost more than loose ones")
	}
	if check(t, r, "frontier") < 5 {
		t.Fatal("Pareto frontier suspiciously small")
	}
}

// E11: on I/O-bound work the machine choice flips from cheap (loose
// deadline) to premium (tight deadline).
func TestE11Crossover(t *testing.T) {
	r := results(t)["E11"]
	if check(t, r, "io:8:xlarge") != 0 {
		t.Fatal("loose deadline should pick the cheap machine for I/O-bound work")
	}
	if check(t, r, "io:1.05:xlarge") != 1 {
		t.Fatal("tight deadline should pick the premium machine for I/O-bound work")
	}
}

// E12: the optimizer never pays more than naive defaults at the same
// deadline, and usually much less.
func TestE12OptimizerValue(t *testing.T) {
	r := results(t)["E12"]
	for k, v := range r.Checks {
		if strings.HasPrefix(k, "saving:") && v < 1 {
			t.Fatalf("%s: optimizer worse than naive (saving %v)", k, v)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	s := NewSuite(1)
	if _, err := s.RunOne("E99", io.Discard); err == nil {
		t.Fatal("want unknown-experiment error")
	}
}

func TestTablesRender(t *testing.T) {
	for id, r := range results(t) {
		var sb strings.Builder
		r.Table.Render(&sb)
		out := sb.String()
		if !strings.Contains(out, id) || len(r.Table.Rows) == 0 {
			t.Fatalf("%s: bad render or empty table", id)
		}
	}
}

// E13: chain reordering delivers large speedups on skewed chains.
func TestE13ReorderValue(t *testing.T) {
	r := results(t)["E13"]
	if sp := check(t, r, "speedup:50000x64x50000x16"); sp < 3 {
		t.Fatalf("reordering speedup %v below 3 on the skewed chain", sp)
	}
	for k, v := range r.Checks {
		if strings.HasPrefix(k, "speedup:") && v < 1 {
			t.Fatalf("%s: reordering made things worse (%v)", k, v)
		}
	}
}

// E14: fusion reduces job counts and never hurts; the epilogue case
// shows a clear win.
func TestE14FusionValue(t *testing.T) {
	r := results(t)["E14"]
	for _, m := range []string{"20000", "80000"} {
		if check(t, r, "fusedJobs:"+m) >= check(t, r, "unfusedJobs:"+m) {
			t.Fatal("fusion should reduce job count")
		}
		if sp := check(t, r, "speedup:"+m); sp < 1 {
			t.Fatalf("fusion hurt GNMF at m=%s: %v", m, sp)
		}
	}
	if sp := check(t, r, "speedup:epilogue"); sp < 1.3 {
		t.Fatalf("epilogue fusion speedup %v below 1.3", sp)
	}
}

// E15: overlap helps branching programs, never hurts chains.
func TestE15OverlapValue(t *testing.T) {
	r := results(t)["E15"]
	if sp := check(t, r, "speedup:two-branch"); sp < 1.2 {
		t.Fatalf("overlap speedup %v below 1.2 on independent jobs", sp)
	}
	if sp := check(t, r, "speedup:rsvd"); sp < 0.99 {
		t.Fatalf("overlap hurt a dependent chain: %v", sp)
	}
}

// E16: masked multiplies get cheaper as the pattern gets sparser.
func TestE16MaskedValue(t *testing.T) {
	r := results(t)["E16"]
	s001 := check(t, r, "speedup:0.001")
	s02 := check(t, r, "speedup:0.2")
	if s001 < 3 {
		t.Fatalf("masked speedup %v below 3 at 0.1%% density", s001)
	}
	if s02 >= s001 {
		t.Fatal("masked advantage should shrink as density grows")
	}
	if s02 < 1 {
		t.Fatalf("masked multiply worse than full even at 20%% density: %v", s02)
	}
}

// E17: higher bids raise completion probability; a qualifying bid beats
// the on-demand bill.
func TestE17SpotValue(t *testing.T) {
	r := results(t)["E17"]
	if check(t, r, "met") != 1 {
		t.Fatal("no bid met the 90% completion target")
	}
	if check(t, r, "lowProb") > check(t, r, "highProb") {
		t.Fatal("completion probability should rise with the bid")
	}
	if check(t, r, "bestCost") >= check(t, r, "onDemand") {
		t.Fatalf("spot cost %v not below on-demand %v",
			r.Checks["bestCost"], r.Checks["onDemand"])
	}
}

// E18: locality grows with replication; oversubscribed racks never help.
func TestE18Locality(t *testing.T) {
	r := results(t)["E18"]
	if _, bad := r.Checks["localityNonMonotone"]; bad {
		t.Fatal("node-local fraction should grow with replication")
	}
	if check(t, r, "local:r6") <= check(t, r, "local:r1") {
		t.Fatal("replication 6 should beat replication 1 on locality")
	}
	if check(t, r, "racked") < check(t, r, "flat3")*0.99 {
		t.Fatal("a penalized topology should not be faster than a flat one")
	}
}

// E19: speculation never hurts and wins under heavy noise.
func TestE19Speculation(t *testing.T) {
	r := results(t)["E19"]
	for _, n := range []string{"0.05", "0.2", "0.6"} {
		if imp := check(t, r, "improvement:"+n); imp < 0.999 {
			t.Fatalf("speculation hurt at noise %s: %v", n, imp)
		}
	}
	if check(t, r, "improvement:0.6") <= 1.0 && check(t, r, "wins:0.6") == 0 {
		t.Fatal("heavy noise should trigger speculation wins")
	}
}

// E20: node deaths below the replication factor never lose data; time
// degrades roughly with lost capacity.
func TestE20FaultRecovery(t *testing.T) {
	r := results(t)["E20"]
	for _, k := range []string{"0", "1", "2", "4"} {
		if check(t, r, "completed:"+k) != 1 {
			t.Fatalf("run with %s dead nodes did not complete", k)
		}
	}
	if check(t, r, "rerepl:2") <= 0 {
		t.Fatal("killing nodes should trigger re-replication traffic")
	}
	if check(t, r, "slowdown:4") < 1.0 {
		t.Fatal("losing a quarter of the cluster should not speed things up")
	}
	if check(t, r, "midrun:crashes") != 1 {
		t.Fatal("mid-run crash was not delivered")
	}
	if check(t, r, "midrun:rerepl") <= 0 {
		t.Fatal("mid-run crash should trigger re-replication traffic")
	}
	if check(t, r, "midrun:slowdown") <= 1.0 {
		t.Fatal("losing a node mid-run should cost time")
	}
	if check(t, r, "bitident") != 1 {
		t.Fatal("chaos run results diverged from the fault-free oracle")
	}
}

// E21: predicted percentiles track the empirical run distribution; the
// confidence premium is bounded.
func TestE21Distribution(t *testing.T) {
	r := results(t)["E21"]
	if check(t, r, "p50rel") > 0.10 {
		t.Fatalf("median prediction error %v above 10%%", r.Checks["p50rel"])
	}
	if check(t, r, "p95rel") > 0.15 {
		t.Fatalf("p95 prediction error %v above 15%%", r.Checks["p95rel"])
	}
	if prem, ok := r.Checks["confPremium"]; ok && prem < 1 {
		t.Fatalf("confidence mode cheaper than point mode: %v", prem)
	}
}

func TestRenderFormats(t *testing.T) {
	r := results(t)["E01"]
	var md, csvOut strings.Builder
	if err := r.Table.RenderAs(&md, "markdown"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| type |") && !strings.Contains(md.String(), "| type ") {
		t.Fatalf("markdown header missing:\n%s", md.String())
	}
	if err := r.Table.RenderAs(&csvOut, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != len(r.Table.Rows)+1 {
		t.Fatalf("csv line count: %d", len(lines))
	}
	if err := r.Table.RenderAs(io.Discard, "yaml"); err == nil {
		t.Fatal("want unknown-format error")
	}
}

// E22: tile caching never hurts and wins on iterative re-reads.
func TestE22TileCache(t *testing.T) {
	r := results(t)["E22"]
	if check(t, r, "cacheGB:0") != 0 {
		t.Fatal("cache traffic with caching off")
	}
	if check(t, r, "cacheGB:0.6") <= 0 {
		t.Fatal("no cache hits at fraction 0.6")
	}
	if sp := check(t, r, "speedup:0.6"); sp < 1.02 {
		t.Fatalf("caching speedup %v too small", sp)
	}
}
