package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// RenderMarkdown writes the table as GitHub-flavored markdown, for
// dropping experiment results straight into reports.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	if t.Notes != "" {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", t.Notes); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (header row first), for plotting
// pipelines.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render dispatches on format: "text" (default), "markdown", or "csv".
func (t *Table) RenderAs(w io.Writer, format string) error {
	switch format {
	case "", "text":
		t.Render(w)
		return nil
	case "markdown", "md":
		return t.RenderMarkdown(w)
	case "csv":
		return t.RenderCSV(w)
	default:
		return fmt.Errorf("bench: unknown format %q (want text, markdown or csv)", format)
	}
}
