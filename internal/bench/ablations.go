package bench

import (
	"fmt"
	"reflect"

	"cumulon/internal/chaos"
	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/exec"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
	"cumulon/internal/spot"
	"cumulon/internal/workloads"
)

// E13ReorderAblation measures the value of matrix-chain reordering (one
// of the optimizer's logical rewrites): the same product chain executed
// as written (left-associated) versus re-parenthesized by the planner.
func (s *Suite) E13ReorderAblation() (*Result, error) {
	r := newResult("E13", "Ablation: matrix-chain reordering (16 x m1.large)",
		"chain", "as written s", "reordered s", "speedup")
	cl := s.cluster(cmpType, cmpNodes, cmpSlots)
	chains := []struct {
		label string
		dims  []int
	}{
		// M0 (tall-skinny) * M1 (skinny-wide) * M2 (wide-skinny): the
		// left-associated order materializes a dense 50k x 50k
		// intermediate; the optimal order never leaves the skinny space.
		{"50000x64x50000x16", []int{50000, 64, 50000, 16}},
		// A milder case: the wrong order costs ~4x the flops.
		{"20000x2048x20000x2048", []int{20000, 2048, 20000, 2048}},
	}
	for _, c := range chains {
		w := workloads.MatMulChain(c.dims)
		var times [2]float64
		for i, disable := range []bool{true, false} {
			m, err := s.runVirtualCfg(w.Prog, plan.Config{TileSize: tileSize, DisableReorder: disable}, cl)
			if err != nil {
				return nil, err
			}
			times[i] = m.TotalSeconds
		}
		speedup := times[0] / times[1]
		r.Table.AddRow(c.label, f1(times[0]), f1(times[1]), f2(speedup))
		r.Checks["speedup:"+c.label] = speedup
	}
	r.Table.Notes = "reordering is free at compile time and can change the cost class of a chain"
	return r, nil
}

// E14FusionAblation measures the value of prologue/epilogue fusion into
// multiply jobs: GNMF compiled with fusion on versus one element-wise
// tree per job (the one-operator-per-job discipline of MR-era systems).
func (s *Suite) E14FusionAblation() (*Result, error) {
	r := newResult("E14", "Ablation: operator fusion on GNMF (16 x m1.large)",
		"m x n", "fused jobs", "fused s", "unfused jobs", "unfused s", "speedup")
	cl := s.cluster(cmpType, cmpNodes, cmpSlots)
	for _, m := range []int{20000, 80000} {
		w := workloads.GNMF(m, m/2, 10, 1, 0.05)
		fused, err := s.runVirtualCfg(w.Prog,
			plan.Config{TileSize: tileSize, Densities: w.Densities}, cl)
		if err != nil {
			return nil, err
		}
		unfused, err := s.runVirtualCfg(w.Prog,
			plan.Config{TileSize: tileSize, Densities: w.Densities, DisableFusion: true}, cl)
		if err != nil {
			return nil, err
		}
		speedup := unfused.TotalSeconds / fused.TotalSeconds
		r.Table.AddRow(fmt.Sprintf("%dx%d", m, m/2),
			d0(len(fused.Jobs)), f1(fused.TotalSeconds),
			d0(len(unfused.Jobs)), f1(unfused.TotalSeconds), f2(speedup))
		r.Checks[fmt.Sprintf("speedup:%d", m)] = speedup
		r.Checks[fmt.Sprintf("fusedJobs:%d", m)] = float64(len(fused.Jobs))
		r.Checks[fmt.Sprintf("unfusedJobs:%d", m)] = float64(len(unfused.Jobs))
	}
	// The epilogue-fusion case proper: D = C ⊙ (A·B) writes the product
	// straight through the element-wise combine; unfused, the full dense
	// product materializes to the DFS and is read back.
	// The outer-product shape (tiny K) makes the product cheap relative
	// to its output, so the avoided materialization dominates.
	ep, err := lang.Parse(`
input A 32768 64
input B 64 32768
input C 32768 32768
D = C .* (A * B)
output D
`)
	if err != nil {
		return nil, err
	}
	epFused, err := s.runVirtualCfg(ep, plan.Config{TileSize: tileSize}, cl)
	if err != nil {
		return nil, err
	}
	epUnfused, err := s.runVirtualCfg(ep, plan.Config{TileSize: tileSize, DisableFusion: true}, cl)
	if err != nil {
		return nil, err
	}
	epSpeedup := epUnfused.TotalSeconds / epFused.TotalSeconds
	r.Table.AddRow("epilogue outer-product",
		d0(len(epFused.Jobs)), f1(epFused.TotalSeconds),
		d0(len(epUnfused.Jobs)), f1(epUnfused.TotalSeconds), f2(epSpeedup))
	r.Checks["speedup:epilogue"] = epSpeedup
	r.Table.Notes = "fusion removes whole jobs (startup + materialization + re-reads)"
	return r, nil
}

// runVirtualCfg is runVirtual with a caller-supplied plan configuration
// (used by the ablations to flip planner features).
func (s *Suite) runVirtualCfg(prog *lang.Program, cfg plan.Config, cl cloud.Cluster) (*exec.RunMetrics, error) {
	res, err := s.Sess.Run(prog, cfg, core.ExecOptions{Cluster: cl, Recorder: s.Recorder, Chaos: s.Chaos})
	if err != nil {
		return nil, err
	}
	return res.Metrics, nil
}

// E15OverlapAblation measures the engine extension that schedules jobs as
// soon as their dependencies finish (instead of Hadoop-style global
// barriers), on RSVD — whose unrolled product chain leaves cluster slack
// at each job boundary — and on a two-branch program with genuinely
// independent jobs.
func (s *Suite) E15OverlapAblation() (*Result, error) {
	r := newResult("E15", "Ablation: barrier vs dependency-driven job scheduling",
		"workload", "barrier s", "overlap s", "speedup")
	branches, err := lang.Parse(`
input A 16384 16384
input B 16384 16384
C = A * B
D = B * A
E = C .* D
output E
`)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		label string
		prog  *lang.Program
		cfg   plan.Config
	}{
		{"two-branch", branches, plan.Config{TileSize: tileSize}},
		{"rsvd", workloads.RSVD(32768, 16384, 256, 2).Prog, plan.Config{TileSize: tileSize}},
	}
	for _, c := range cases {
		var times [2]float64
		for i, overlap := range []bool{false, true} {
			pl, err := plan.Compile(c.prog, c.cfg)
			if err != nil {
				return nil, err
			}
			cl := s.cluster(cmpType, cmpNodes, cmpSlots)
			// Under-split so single jobs cannot saturate the cluster and
			// the barrier slack is visible.
			pl.AutoSplit(cl.TotalSlots() / 4)
			eng, err := exec.New(exec.Config{Cluster: cl, Seed: s.Seed, NoiseFactor: 0.08, OverlapJobs: overlap})
			if err != nil {
				return nil, err
			}
			for _, in := range pl.Inputs {
				if err := eng.LoadVirtual(in); err != nil {
					return nil, err
				}
			}
			m, err := eng.Run(pl)
			if err != nil {
				return nil, err
			}
			times[i] = m.TotalSeconds
		}
		speedup := times[0] / times[1]
		r.Table.AddRow(c.label, f1(times[0]), f1(times[1]), f2(speedup))
		r.Checks["speedup:"+c.label] = speedup
	}
	r.Table.Notes = "overlap helps when single jobs cannot saturate the cluster"
	return r, nil
}

// E16MaskedMultiply measures the masked-multiply operator: computing a
// low-rank product only at a sparse pattern's observed entries (the
// residual primitive of matrix factorization) versus computing the full
// dense product and masking afterwards, across pattern densities.
func (s *Suite) E16MaskedMultiply() (*Result, error) {
	r := newResult("E16", "Masked multiply vs full product (16 x m1.large, 65536x32768, rank 64)",
		"density", "masked s", "full s", "speedup")
	cl := s.cluster(cmpType, cmpNodes, cmpSlots)
	const m, n, k = 65536, 32768, 64
	fullProg, err := lang.Parse(fmt.Sprintf(`
input W %d %d
input H %d %d
R = W * H
output R
`, m, k, k, n))
	if err != nil {
		return nil, err
	}
	full, err := s.runVirtualCfg(fullProg, plan.Config{TileSize: tileSize}, cl)
	if err != nil {
		return nil, err
	}
	for _, density := range []float64{0.001, 0.01, 0.05, 0.2} {
		maskedProg, err := lang.Parse(fmt.Sprintf(`
input V %d %d sparse
input W %d %d
input H %d %d
R = mask(V, W * H)
output R
`, m, n, m, k, k, n))
		if err != nil {
			return nil, err
		}
		masked, err := s.runVirtualCfg(maskedProg,
			plan.Config{TileSize: tileSize, Densities: map[string]float64{"V": density}}, cl)
		if err != nil {
			return nil, err
		}
		speedup := full.TotalSeconds / masked.TotalSeconds
		r.Table.AddRow(fmt.Sprintf("%.3f", density), f1(masked.TotalSeconds),
			f1(full.TotalSeconds), f2(speedup))
		r.Checks[fmt.Sprintf("speedup:%g", density)] = speedup
	}
	r.Table.Notes = "masked cost scales with nnz(V), full cost with m*n; both also write very different output volumes"
	return r, nil
}

// E17SpotBidding evaluates the spot-market extension: expected cost and
// completion probability as a function of the bid, for the GNMF program's
// actual job durations, against the on-demand price.
func (s *Suite) E17SpotBidding() (*Result, error) {
	r := newResult("E17", "Spot instances: bid sweep for GNMF (16 x m1.large)",
		"bid $/h", "finish prob", "expected cost $", "mean evictions")
	cl := s.cluster(cmpType, cmpNodes, cmpSlots)
	w := workloads.GNMF(200000, 100000, 10, 2, 0.05)
	m, err := s.runVirtualCfg(w.Prog, plan.Config{TileSize: tileSize, Densities: w.Densities}, cl)
	if err != nil {
		return nil, err
	}
	var jobSecs []float64
	for _, j := range m.Jobs {
		jobSecs = append(jobSecs, j.Seconds())
	}
	market := spot.DefaultMarket(cl.Type.PricePerHour)
	horizon := m.TotalSeconds * 6
	best, ok, sweep := spot.OptimizeBid(jobSecs, cl.Nodes, market, 40, s.Seed, horizon, 0.9)
	for _, e := range sweep {
		r.Table.AddRow(f3(e.Bid), f2(e.FinishProb), f2(e.ExpectedCost), f2(e.MeanEvicts))
	}
	onDemand := cloud.Cost(cl.Type, cl.Nodes, m.TotalSeconds)
	r.Checks["onDemand"] = onDemand
	r.Checks["bestCost"] = best.ExpectedCost
	r.Checks["bestProb"] = best.FinishProb
	r.Checks["met"] = boolTo01(ok)
	r.Checks["lowProb"] = sweep[0].FinishProb
	r.Checks["highProb"] = sweep[len(sweep)-1].FinishProb
	r.Table.Notes = fmt.Sprintf("on-demand bill $%.2f; best qualifying bid $%.3f/h with expected cost $%.2f",
		onDemand, best.Bid, best.ExpectedCost)
	return r, nil
}

// E18Locality studies data locality, the property Cumulon's scheduler and
// the HDFS substrate provide: the fraction of read bytes served
// node-locally as the replication factor grows, and the cost of an
// oversubscribed two-rack topology versus a flat network.
func (s *Suite) E18Locality() (*Result, error) {
	r := newResult("E18", "Locality and network topology (16 nodes, GNMF 80000x40000)",
		"configuration", "local %", "rack %", "remote %", "seconds")
	w := workloads.GNMF(80000, 40000, 10, 1, 0.05)
	cfg := plan.Config{TileSize: tileSize, Densities: w.Densities}

	type variant struct {
		label    string
		repl     int
		rackSize int
		penalty  float64
	}
	variants := []variant{
		{"replication 1", 1, 0, 1},
		{"replication 3", 3, 0, 1},
		{"replication 6", 6, 0, 1},
		{"2 racks, penalty 3", 3, 8, 3},
	}
	var flat3, racked float64
	var localFracs []float64
	for _, v := range variants {
		pl, err := plan.Compile(w.Prog, cfg)
		if err != nil {
			return nil, err
		}
		cl := s.cluster(cmpType, cmpNodes, cmpSlots)
		pl.AutoSplit(cl.TotalSlots())
		eng, err := exec.New(exec.Config{
			Cluster:          cl,
			Replication:      v.repl,
			RackSize:         v.rackSize,
			CrossRackPenalty: exec.Float(v.penalty),
			Seed:             s.Seed,
			NoiseFactor:      0.08,
		})
		if err != nil {
			return nil, err
		}
		for _, in := range pl.Inputs {
			if err := eng.LoadVirtual(in); err != nil {
				return nil, err
			}
		}
		m, err := eng.Run(pl)
		if err != nil {
			return nil, err
		}
		var local, rack, remote int64
		for _, tr := range m.Tasks {
			local += tr.LocalReadBytes
			rack += tr.RackReadBytes
			remote += tr.RemoteReadBytes
		}
		total := float64(local + rack + remote)
		lf := float64(local) / total
		r.Table.AddRow(v.label,
			f1(100*lf), f1(100*float64(rack)/total), f1(100*float64(remote)/total),
			f1(m.TotalSeconds))
		if v.label == "replication 3" {
			flat3 = m.TotalSeconds
		}
		if v.rackSize > 0 {
			racked = m.TotalSeconds
		}
		if v.rackSize == 0 {
			localFracs = append(localFracs, lf)
		}
	}
	for i := 1; i < len(localFracs); i++ {
		if localFracs[i] < localFracs[i-1] {
			r.Checks["localityNonMonotone"] = 1
		}
	}
	r.Checks["local:r1"] = localFracs[0]
	r.Checks["local:r6"] = localFracs[len(localFracs)-1]
	r.Checks["flat3"] = flat3
	r.Checks["racked"] = racked
	r.Table.Notes = "more replicas mean more node-local reads; oversubscribed racks tax the remainder"
	return r, nil
}

// E19Speculation measures speculative execution: makespan with and
// without straggler backups as the noise level grows.
func (s *Suite) E19Speculation() (*Result, error) {
	r := newResult("E19", "Speculative execution vs straggler noise (8 x m1.large, matmul 32768^2)",
		"noise", "plain s", "speculative s", "improvement", "backups won")
	w := workloads.MatMul(32768, 32768, 32768)
	for _, noise := range []float64{0.05, 0.2, 0.6} {
		var times [2]float64
		var wins int
		for i, speculate := range []bool{false, true} {
			pl, err := plan.Compile(w.Prog, plan.Config{TileSize: tileSize})
			if err != nil {
				return nil, err
			}
			cl := s.cluster(cmpType, 8, cmpSlots)
			pl.AutoSplit(cl.TotalSlots())
			eng, err := exec.New(exec.Config{
				Cluster: cl, Seed: s.Seed, NoiseFactor: noise, Speculation: speculate,
			})
			if err != nil {
				return nil, err
			}
			for _, in := range pl.Inputs {
				if err := eng.LoadVirtual(in); err != nil {
					return nil, err
				}
			}
			m, err := eng.Run(pl)
			if err != nil {
				return nil, err
			}
			times[i] = m.TotalSeconds
			if speculate {
				wins = m.SpeculativeTasks
			}
		}
		imp := times[0] / times[1]
		r.Table.AddRow(fmt.Sprintf("%.2f", noise), f1(times[0]), f1(times[1]), f2(imp), d0(wins))
		r.Checks[fmt.Sprintf("improvement:%g", noise)] = imp
		r.Checks[fmt.Sprintf("wins:%g", noise)] = float64(wins)
	}
	r.Table.Notes = "heavier tails leave more for backups to win"
	return r, nil
}

// E20FaultRecovery exercises the fault-tolerance path: datanodes die
// after data ingest, the DFS re-replicates from surviving copies, and the
// scheduler completes the program on the remaining nodes.
func (s *Suite) E20FaultRecovery() (*Result, error) {
	r := newResult("E20", "Node failures: GNMF on 16 nodes with k dead (replication 3)",
		"dead nodes", "completed", "seconds", "re-replicated GB", "slowdown")
	w := workloads.GNMF(80000, 40000, 10, 1, 0.05)
	cfg := plan.Config{TileSize: tileSize, Densities: w.Densities}
	var base float64
	for _, dead := range []int{0, 1, 2, 4} {
		pl, err := plan.Compile(w.Prog, cfg)
		if err != nil {
			return nil, err
		}
		cl := s.cluster(cmpType, cmpNodes, cmpSlots)
		pl.AutoSplit(cl.TotalSlots())
		eng, err := exec.New(exec.Config{Cluster: cl, Seed: s.Seed, NoiseFactor: 0.08})
		if err != nil {
			return nil, err
		}
		for _, in := range pl.Inputs {
			if err := eng.LoadVirtual(in); err != nil {
				return nil, err
			}
		}
		before := eng.FS().Stats(-1).ReplicationBytes
		for n := 0; n < dead; n++ {
			eng.FS().KillNode(n)
		}
		rerepl := eng.FS().Stats(-1).ReplicationBytes - before
		m, err := eng.Run(pl)
		completed := err == nil
		secs := 0.0
		if completed {
			secs = m.TotalSeconds
		}
		if dead == 0 {
			base = secs
		}
		slowdown := 0.0
		if base > 0 && completed {
			slowdown = secs / base
		}
		r.Table.AddRow(d0(dead), fmt.Sprintf("%v", completed), f1(secs),
			gb(rerepl), f2(slowdown))
		r.Checks[fmt.Sprintf("completed:%d", dead)] = boolTo01(completed)
		r.Checks[fmt.Sprintf("slowdown:%d", dead)] = slowdown
		r.Checks[fmt.Sprintf("rerepl:%d", dead)] = float64(rerepl)
	}
	// Mid-run chaos: the same workload with a node crash delivered while
	// the program is executing (at 40% of the fault-free makespan) plus
	// transient task and read faults. The scheduler retries onto the
	// survivors and the DFS re-replicates from the remaining copies, so
	// the run completes — slower, never wrong.
	if base > 0 {
		pl, err := plan.Compile(w.Prog, cfg)
		if err != nil {
			return nil, err
		}
		cl := s.cluster(cmpType, cmpNodes, cmpSlots)
		pl.AutoSplit(cl.TotalSlots())
		sched := &chaos.Schedule{
			Seed:          s.Seed,
			Crashes:       []chaos.NodeCrash{{Node: 0, At: 0.4 * base}},
			TaskFaultProb: 0.02,
			ReadFaultProb: 0.01,
		}
		eng, err := exec.New(exec.Config{Cluster: cl, Seed: s.Seed, NoiseFactor: 0.08, Chaos: sched})
		if err != nil {
			return nil, err
		}
		for _, in := range pl.Inputs {
			if err := eng.LoadVirtual(in); err != nil {
				return nil, err
			}
		}
		m, err := eng.Run(pl)
		if err != nil {
			return nil, err
		}
		r.Table.AddRow("1 mid-run", "true", f1(m.TotalSeconds),
			gb(m.RereplicatedBytes), f2(m.TotalSeconds/base))
		r.Checks["midrun:crashes"] = float64(m.NodeCrashes)
		r.Checks["midrun:retries"] = float64(m.TotalRetries)
		r.Checks["midrun:rerepl"] = float64(m.RereplicatedBytes)
		r.Checks["midrun:slowdown"] = m.TotalSeconds / base
	}

	// Materialized bit-identity spot check at small scale: recovery must
	// change the timeline, never the data.
	bitident, err := s.chaosBitIdentity()
	if err != nil {
		return nil, err
	}
	r.Checks["bitident"] = boolTo01(bitident)

	r.Table.Notes = "losing nodes costs capacity (~n/(n-k) slowdown) plus re-replication traffic; no data loss at k < replication"
	return r, nil
}

// chaosBitIdentity runs a small materialized GNMF iteration on a racked
// cluster twice — fault-free, then under a chaos schedule that kills a
// node mid-program and injects transient faults — and reports whether the
// outputs match bit for bit.
func (s *Suite) chaosBitIdentity() (bool, error) {
	prog, err := lang.Parse(`
input V 26 22 sparse
input W 26 4
input H 4 22
H = H .* (W' * V) ./ ((W' * W) * H)
W = W .* (V * H') ./ (W * (H * H'))
output W
output H
`)
	if err != nil {
		return false, err
	}
	inputs := map[string]*linalg.Dense{
		"V": linalg.RandomSparseDense(26, 22, 0.25, 31),
		"W": linalg.RandomDense(26, 4, 32).Map(func(x float64) float64 { return x + 0.5 }),
		"H": linalg.RandomDense(4, 22, 33).Map(func(x float64) float64 { return x + 0.5 }),
	}
	run := func(sched *chaos.Schedule) (map[string]*linalg.Dense, *exec.RunMetrics, error) {
		pl, err := plan.Compile(prog, plan.Config{TileSize: 8, Densities: map[string]float64{"V": 0.25}})
		if err != nil {
			return nil, nil, err
		}
		cl := s.cluster(cmpType, 4, 2)
		pl.AutoSplit(cl.TotalSlots())
		eng, err := exec.New(exec.Config{
			Cluster: cl, Materialize: true, Seed: s.Seed, NoiseFactor: 0.08,
			RackSize: 2, Workers: s.Workers, Chaos: sched,
		})
		if err != nil {
			return nil, nil, err
		}
		for _, in := range pl.Inputs {
			if err := eng.LoadDense(in, inputs[in.Name]); err != nil {
				return nil, nil, err
			}
		}
		m, err := eng.Run(pl)
		if err != nil {
			return nil, nil, err
		}
		outs := map[string]*linalg.Dense{}
		for name, meta := range pl.Outputs {
			d, err := eng.FetchOutput(meta)
			if err != nil {
				return nil, nil, err
			}
			outs[name] = d
		}
		return outs, m, nil
	}
	clean, cleanM, err := run(nil)
	if err != nil {
		return false, err
	}
	faulty, faultyM, err := run(&chaos.Schedule{
		Seed:          s.Seed + 1,
		Crashes:       []chaos.NodeCrash{{Node: 3, At: 0.4 * cleanM.TotalSeconds}},
		TaskFaultProb: 0.05,
		ReadFaultProb: 0.02,
	})
	if err != nil {
		return false, err
	}
	if faultyM.NodeCrashes != 1 {
		return false, fmt.Errorf("E20: chaos crash not delivered (crashes=%d)", faultyM.NodeCrashes)
	}
	for name, want := range clean {
		got := faulty[name]
		if got == nil || !reflect.DeepEqual(want.Data, got.Data) {
			return false, nil
		}
	}
	return true, nil
}

// E22TileCache measures the memory-caching configuration setting: GNMF
// iterations re-read the ratings matrix V, so per-node tile caches turn
// most of that traffic into memory hits once V fits.
func (s *Suite) E22TileCache() (*Result, error) {
	r := newResult("E22", "Node tile cache on iterative GNMF (8 x m1.large, 3 iterations)",
		"cache fraction", "seconds", "DFS read GB", "cache GB", "speedup")
	w := workloads.GNMF(80000, 40000, 10, 3, 0.05)
	cfg := plan.Config{TileSize: tileSize, Densities: w.Densities}
	var base float64
	for _, frac := range []float64{0, 0.25, 0.6} {
		pl, err := plan.Compile(w.Prog, cfg)
		if err != nil {
			return nil, err
		}
		cl := s.cluster(cmpType, 8, cmpSlots)
		pl.AutoSplit(cl.TotalSlots())
		eng, err := exec.New(exec.Config{Cluster: cl, Seed: s.Seed, NoiseFactor: 0.08, CacheFraction: frac})
		if err != nil {
			return nil, err
		}
		for _, in := range pl.Inputs {
			if err := eng.LoadVirtual(in); err != nil {
				return nil, err
			}
		}
		m, err := eng.Run(pl)
		if err != nil {
			return nil, err
		}
		if frac == 0 {
			base = m.TotalSeconds
		}
		speedup := base / m.TotalSeconds
		r.Table.AddRow(fmt.Sprintf("%.2f", frac), f1(m.TotalSeconds),
			gb(m.TotalReadBytes), gb(m.TotalCacheBytes), f2(speedup))
		r.Checks[fmt.Sprintf("speedup:%g", frac)] = speedup
		r.Checks[fmt.Sprintf("cacheGB:%g", frac)] = float64(m.TotalCacheBytes) / 1e9
	}
	r.Table.Notes = "m1.large has 7.5 GB; a 0.6 fraction caches most of the working set"
	return r, nil
}
