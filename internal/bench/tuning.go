package bench

import (
	"fmt"
	"math"

	"cumulon/internal/cloud"
	"cumulon/internal/exec"
	"cumulon/internal/lang"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

// E05SplitSweep reproduces the physical-parameter study: how the split of
// a single matrix-multiply job changes its running time, including the
// k-split tradeoff (parallelism vs aggregation pass).
func (s *Suite) E05SplitSweep() (*Result, error) {
	r := newResult("E05", "MatMul split sweep on 8 x m1.large (32768^2, tile 2048)",
		"split (ci,cj,ck)", "tasks", "seconds")
	cl := s.cluster(cmpType, 8, cmpSlots)
	w := workloads.MatMul(32768, 32768, 32768)

	type point struct {
		split plan.Split
		secs  float64
	}
	var points []point
	run := func(sp plan.Split) error {
		pl, err := plan.Compile(w.Prog, plan.Config{TileSize: tileSize})
		if err != nil {
			return err
		}
		pl.Jobs[0].Split = sp
		eng, err := s.newEngine(cl)
		if err != nil {
			return err
		}
		for _, in := range pl.Inputs {
			if err := eng.LoadVirtual(in); err != nil {
				return err
			}
		}
		m, err := eng.Run(pl)
		if err != nil {
			return err
		}
		points = append(points, point{sp, m.TotalSeconds})
		r.Table.AddRow(sp.String(), d0(sp.Tasks()), f1(m.TotalSeconds))
		return nil
	}
	// Part A: square output splits with ck=1.
	for _, c := range []int{1, 2, 4, 8, 16} {
		if err := run(plan.Split{CI: c, CJ: c, CK: 1}); err != nil {
			return nil, err
		}
	}
	best := math.Inf(1)
	var bestSplit plan.Split
	for _, p := range points {
		if p.secs < best {
			best = p.secs
			bestSplit = p.split
		}
	}
	r.Checks["best"] = best
	r.Checks["serial"] = points[0].secs
	r.Table.Notes = fmt.Sprintf("optimum %v: %.1fs (serial %.1fs)", bestSplit, best, points[0].secs)

	// Part B: the k-split tradeoff on a skinny product Wᵀ·V whose output
	// grid (1 x 16 tiles) cannot fill the cluster: ck > 1 buys
	// parallelism, large ck drowns in partial-result I/O — an interior
	// optimum (the tradeoff Cumulon's aggregation jobs manage).
	skinny, err := lang.Parse(`
input W 131072 2048
input V 131072 32768
C = W' * V
output C
`)
	if err != nil {
		return nil, err
	}
	r2rows := make([]point, 0, 6)
	for _, ck := range []int{1, 2, 4, 8, 16, 32} {
		pl, err := plan.Compile(skinny, plan.Config{TileSize: tileSize})
		if err != nil {
			return nil, err
		}
		pl.Jobs[0].Split = plan.Split{CI: 1, CJ: 16, CK: ck}
		eng, err := s.newEngine(s.cluster(cmpType, cmpNodes, cmpSlots))
		if err != nil {
			return nil, err
		}
		for _, in := range pl.Inputs {
			if err := eng.LoadVirtual(in); err != nil {
				return nil, err
			}
		}
		m, err := eng.Run(pl)
		if err != nil {
			return nil, err
		}
		sp := plan.Split{CI: 1, CJ: 16, CK: ck}
		r2rows = append(r2rows, point{sp, m.TotalSeconds})
		r.Table.AddRow("skinny "+sp.String(), d0(sp.Tasks()), f1(m.TotalSeconds))
	}
	bestCk, bestCkTime := 1, math.Inf(1)
	for _, p := range r2rows {
		if p.secs < bestCkTime {
			bestCkTime = p.secs
			bestCk = p.split.CK
		}
	}
	r.Checks["skinny:ck1"] = r2rows[0].secs
	r.Checks["skinny:ck32"] = r2rows[len(r2rows)-1].secs
	r.Checks["skinny:bestCk"] = float64(bestCk)
	r.Checks["skinny:best"] = bestCkTime
	return r, nil
}

// E06SlotSweep reproduces the configuration study: time versus task slots
// per node. CPU-bound jobs want slots >= cores; I/O contention pushes
// back, yielding an interior optimum.
func (s *Suite) E06SlotSweep() (*Result, error) {
	r := newResult("E06", "Slots per node sweep on 8 x m1.xlarge (GNMF 40000x20000)",
		"slots", "gnmf s", "matmul s")
	gn := workloads.GNMF(40000, 20000, 10, 1, 0.05)
	mmw := workloads.MatMul(16384, 16384, 16384)
	var gnTimes, mmTimes []float64
	for slots := 1; slots <= 8; slots++ {
		cl := s.cluster("m1.xlarge", 8, slots)
		gm, err := s.runVirtual(gn.Prog, plan.Config{TileSize: tileSize, Densities: gn.Densities}, cl)
		if err != nil {
			return nil, err
		}
		mm, err := s.runVirtual(mmw.Prog, plan.Config{TileSize: tileSize}, cl)
		if err != nil {
			return nil, err
		}
		gnTimes = append(gnTimes, gm.TotalSeconds)
		mmTimes = append(mmTimes, mm.TotalSeconds)
		r.Table.AddRow(d0(slots), f1(gm.TotalSeconds), f1(mm.TotalSeconds))
	}
	bestSlot := 1
	for i, t := range mmTimes {
		if t < mmTimes[bestSlot-1] {
			bestSlot = i + 1
		}
	}
	r.Checks["bestSlots:matmul"] = float64(bestSlot)
	r.Checks["t1:matmul"] = mmTimes[0]
	r.Checks["tbest:matmul"] = mmTimes[bestSlot-1]
	bestGn := 1
	for i, t := range gnTimes {
		if t < gnTimes[bestGn-1] {
			bestGn = i + 1
		}
	}
	r.Checks["bestSlots:gnmf"] = float64(bestGn)
	r.Table.Notes = "m1.xlarge has 4 cores; the optimum sits at or above the core count"
	return r, nil
}

// newEngine builds a virtual-mode engine on the cluster with the suite's
// seed, for experiments that drive the engine directly (e.g. to set
// splits by hand).
func (s *Suite) newEngine(cl cloud.Cluster) (*exec.Engine, error) {
	return exec.New(exec.Config{Cluster: cl, Seed: s.Seed, NoiseFactor: 0.08})
}
