package bench

import (
	"fmt"
	"io"
)

// Experiment names one runnable experiment.
type Experiment struct {
	ID  string
	Run func(s *Suite) (*Result, error)
}

// All lists every experiment in the reproduction, in order.
func All() []Experiment {
	return []Experiment{
		{"E01", (*Suite).E01MachineCatalog},
		{"E02", (*Suite).E02WorkloadSuite},
		{"E03", (*Suite).E03MatMulVsMR},
		{"E04", (*Suite).E04GNMFVsMR},
		{"E05", (*Suite).E05SplitSweep},
		{"E06", (*Suite).E06SlotSweep},
		{"E07", (*Suite).E07TaskModelAccuracy},
		{"E08", (*Suite).E08SimAccuracy},
		{"E09", (*Suite).E09Speedup},
		{"E10", (*Suite).E10CostDeadline},
		{"E11", (*Suite).E11MachineChoice},
		{"E12", (*Suite).E12OptimizerValue},
		{"E13", (*Suite).E13ReorderAblation},
		{"E14", (*Suite).E14FusionAblation},
		{"E15", (*Suite).E15OverlapAblation},
		{"E16", (*Suite).E16MaskedMultiply},
		{"E17", (*Suite).E17SpotBidding},
		{"E18", (*Suite).E18Locality},
		{"E19", (*Suite).E19Speculation},
		{"E20", (*Suite).E20FaultRecovery},
		{"E21", (*Suite).E21Distribution},
		{"E22", (*Suite).E22TileCache},
	}
}

// RunAll executes every experiment, rendering each table to w. It stops
// at the first failure.
func (s *Suite) RunAll(w io.Writer) (map[string]*Result, error) {
	out := map[string]*Result{}
	for _, e := range All() {
		res, err := e.Run(s)
		if err != nil {
			return out, fmt.Errorf("bench: %s: %w", e.ID, err)
		}
		res.Table.Render(w)
		out[e.ID] = res
	}
	return out, nil
}

// RunOne executes a single experiment by id.
func (s *Suite) RunOne(id string, w io.Writer) (*Result, error) {
	return s.RunOneFormat(id, w, "text")
}

// RunOneFormat executes a single experiment, rendering its table in the
// requested format ("text", "markdown" or "csv").
func (s *Suite) RunOneFormat(id string, w io.Writer, format string) (*Result, error) {
	for _, e := range All() {
		if e.ID == id {
			res, err := e.Run(s)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", e.ID, err)
			}
			if err := res.Table.RenderAs(w, format); err != nil {
				return nil, err
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", id)
}
