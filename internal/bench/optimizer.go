package bench

import (
	"fmt"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/opt"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

// optWorkload is the GNMF instance the optimization experiments share —
// sized so that a single cheap node needs several hours and the deadline
// sweep exercises real provisioning decisions.
func optWorkload() workloads.Workload {
	return workloads.GNMF(400000, 200000, 50, 4, 0.05)
}

func (s *Suite) optRequest(w workloads.Workload, maxNodes int, machines ...string) opt.Request {
	req := opt.Request{
		Program:  w.Prog,
		PlanCfg:  plan.Config{TileSize: tileSize, Densities: w.Densities},
		MaxNodes: maxNodes,
		Search:   s.Search,
	}
	for _, name := range machines {
		mt, err := cloud.TypeByName(name)
		if err != nil {
			panic(err)
		}
		req.Machines = append(req.Machines, mt)
	}
	return req
}

// E10CostDeadline reproduces the central optimization figure: the minimum
// achievable cost as a function of the deadline, with the deployment the
// optimizer picks at each point, plus the overall time/cost Pareto
// frontier.
func (s *Suite) E10CostDeadline() (*Result, error) {
	r := newResult("E10", "Optimal cost vs deadline (GNMF, full catalog, <=64 nodes)",
		"deadline h", "met", "cost $", "deployment", "pred s")
	w := optWorkload()
	req := s.optRequest(w, 64)
	// One enumeration serves all deadlines.
	cands, err := s.Sess.Optimizer().Enumerate(req)
	if err != nil {
		return nil, err
	}
	prevCost := 0.0
	first := true
	for _, hours := range []float64{0.5, 1, 2, 4, 8, 16} {
		deadline := hours * 3600
		var best *opt.Deployment
		for i := range cands {
			d := &cands[i]
			if d.PredSeconds > deadline {
				continue
			}
			if best == nil || d.Cost < best.Cost {
				best = d
			}
		}
		if best == nil {
			r.Table.AddRow(f1(hours), "no", "-", "-", "-")
			continue
		}
		r.Table.AddRow(f1(hours), "yes", f2(best.Cost), best.Cluster.String(), f1(best.PredSeconds))
		r.Checks[fmt.Sprintf("cost:%gh", hours)] = best.Cost
		if !first && best.Cost > prevCost+1e-9 {
			r.Checks["nonmonotone"] = 1
		}
		prevCost = best.Cost
		first = false
	}
	// Frontier shape as a sanity check of the tradeoff space.
	rq := req
	rq.DeadlineSec = 16 * 3600
	res, err := s.Sess.Optimizer().MinCostForDeadline(rq)
	if err != nil {
		return nil, err
	}
	frontier := len(res.Frontier)
	minCost := res.Frontier[frontier-1].Cost
	r.Checks["frontier"] = float64(frontier)
	r.Checks["cheapest"] = minCost
	r.Table.Notes = fmt.Sprintf("Pareto frontier has %d points; cheapest overall $%.2f", frontier, minCost)
	return r, nil
}

// E11MachineChoice reproduces the provisioning-choice figure: which
// machine type the optimizer picks as the deadline tightens, for a
// CPU-bound and an I/O-bound workload.
func (s *Suite) E11MachineChoice() (*Result, error) {
	r := newResult("E11", "Machine-type choice vs deadline (CPU-bound and I/O-bound)",
		"workload", "deadline h", "machine", "nodes", "cost $")
	cpuW := workloads.MatMul(32768, 32768, 32768)

	ioProg, err := lang.Parse(`
input A 60000 20000
input B 60000 20000
C = A .* B + A
output C
`)
	if err != nil {
		return nil, err
	}
	ioW := workloads.Workload{Name: "elementwise-io", Prog: ioProg}

	for _, entry := range []struct {
		w     workloads.Workload
		label string
	}{{cpuW, "cpu"}, {ioW, "io"}} {
		req := s.optRequest(entry.w, 16, "m1.small", "c1.xlarge")
		cands, err := s.Sess.Optimizer().Enumerate(req)
		if err != nil {
			return nil, err
		}
		fastest := 0.0
		for _, d := range cands {
			if fastest == 0 || d.PredSeconds < fastest {
				fastest = d.PredSeconds
			}
		}
		for _, f := range []float64{8, 2, 1.05} {
			deadline := fastest * f
			var best *opt.Deployment
			for i := range cands {
				d := &cands[i]
				if d.PredSeconds > deadline {
					continue
				}
				if best == nil || d.Cost < best.Cost {
					best = d
				}
			}
			if best == nil {
				continue
			}
			r.Table.AddRow(entry.label, f2(deadline/3600), best.Cluster.Type.Name,
				d0(best.Cluster.Nodes), f2(best.Cost))
			r.Checks[fmt.Sprintf("%s:%g:xlarge", entry.label, f)] = boolTo01(best.Cluster.Type.Name == "c1.xlarge")
		}
	}
	r.Table.Notes = "I/O-bound work flips from m1.small (loose) to c1.xlarge (tight); CPU-bound favors c1.xlarge throughout (best $/ECU)"
	return r, nil
}

// E12OptimizerValue reproduces the end-to-end payoff figure: the cost of
// the optimizer's deployment versus naive defaults, at the deadline the
// naive deployment achieves.
func (s *Suite) E12OptimizerValue() (*Result, error) {
	r := newResult("E12", "Optimizer vs naive deployments (cost at equal deadline)",
		"workload", "naive", "naive s", "naive $", "optimized", "opt pred s", "opt $", "saving")
	for _, w := range []workloads.Workload{
		workloads.GNMF(40000, 20000, 10, 1, 0.02),
		workloads.RSVD(65536, 16384, 256, 1),
		workloads.Regression(500000, 1000, 1, 1e-6),
	} {
		cfg := plan.Config{TileSize: tileSize, Densities: w.Densities}
		// Naive: a mid-size default cluster with heuristic splits.
		naiveCl := s.cluster(cmpType, 16, cmpSlots)
		res, err := s.Sess.Run(w.Prog, cfg, core.ExecOptions{Cluster: naiveCl})
		if err != nil {
			return nil, err
		}
		naiveSecs := res.Metrics.TotalSeconds
		naiveCost := res.CostDollars

		req := s.optRequest(w, 32)
		req.DeadlineSec = naiveSecs
		best, err := s.Sess.Optimizer().MinCostForDeadline(req)
		if err != nil {
			return nil, err
		}
		if !best.Met {
			return nil, fmt.Errorf("bench: optimizer cannot match naive time for %s", w.Name)
		}
		saving := naiveCost / best.Best.Cost
		r.Table.AddRow(w.Name, naiveCl.String(), f1(naiveSecs), f2(naiveCost),
			best.Best.Cluster.String(), f1(best.Best.PredSeconds), f2(best.Best.Cost), f2(saving))
		r.Checks["saving:"+w.Name] = saving
	}
	r.Table.Notes = "saving = naive cost / optimized cost at the same deadline (>= 1 expected)"
	return r, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
