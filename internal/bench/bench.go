// Package bench regenerates the paper's evaluation: every experiment
// (E01..E12, see DESIGN.md for the mapping onto the paper's tables and
// figures) is a method on Suite that produces a printable table plus a
// set of named check values that the benchmark tests assert qualitative
// claims against (who wins, by what factor, where the optima lie).
//
// All engine runs are virtual-mode (placement, scheduling and timing are
// exact; tile payloads are elided) so experiments run at paper scale;
// correctness of the same code paths is established by the materialized
// integration tests in the exec and core packages.
package bench

import (
	"fmt"
	"io"
	"strings"

	"cumulon/internal/chaos"
	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/exec"
	"cumulon/internal/lang"
	"cumulon/internal/obs"
	"cumulon/internal/opt"
	"cumulon/internal/plan"
)

// Table is one experiment's rendered output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Result is one experiment outcome: the table plus named quantitative
// checks for assertions.
type Result struct {
	Table  *Table
	Checks map[string]float64
}

func newResult(id, title string, header ...string) *Result {
	return &Result{
		Table:  &Table{ID: id, Title: title, Header: header},
		Checks: map[string]float64{},
	}
}

// Suite owns the shared state of an experiment run: the session (with its
// cached calibrated models) and the seed.
type Suite struct {
	Sess *core.Session
	Seed int64
	// Workers sets the compute parallelism of materialized runs (see
	// exec.Config.Workers). Virtual-mode experiments are unaffected; the
	// knob exists so materialized comparisons and the integration tests
	// that drive the suite finish faster on multi-core hosts.
	Workers int
	// Recorder, when set, receives the observability spans of every
	// engine run the suite performs (the bench binary points it at an
	// obs.Trace for its -trace/-metrics flags). nil disables recording.
	Recorder obs.Recorder
	// Search, when set, receives candidate-level telemetry from every
	// optimizer search the suite performs (the bench binary points it at
	// an opt.SearchTrace for its -searchtrace flag). nil disables
	// recording.
	Search opt.SearchRecorder
	// Chaos, when set, injects the fault schedule into every engine run
	// the suite performs (the bench binary's -chaos flag). Experiments
	// that construct their own fault scenarios (E20) ignore it.
	Chaos *chaos.Schedule
}

// NewSuite constructs a suite; all randomness derives from seed.
func NewSuite(seed int64) *Suite {
	return &Suite{Sess: core.NewSession(seed), Seed: seed}
}

// cluster builds a named-type cluster or panics (experiment parameters
// are static; a bad name is a programming error).
func (s *Suite) cluster(typeName string, nodes, slots int) cloud.Cluster {
	mt, err := cloud.TypeByName(typeName)
	if err != nil {
		panic(err)
	}
	cl, err := cloud.NewCluster(mt, nodes, slots)
	if err != nil {
		panic(err)
	}
	return cl
}

// runVirtual compiles and executes a program in virtual mode on the given
// cluster, with AutoSplit physical parameters, returning the run metrics.
func (s *Suite) runVirtual(prog *lang.Program, cfg plan.Config, cl cloud.Cluster) (*exec.RunMetrics, error) {
	return s.runVirtualRec(prog, cfg, cl, s.Recorder)
}

// runVirtualRec is runVirtual recording into a caller-supplied recorder
// (E08 uses a fresh obs.Trace per run for the predicted-vs-actual diff).
func (s *Suite) runVirtualRec(prog *lang.Program, cfg plan.Config, cl cloud.Cluster, rec obs.Recorder) (*exec.RunMetrics, error) {
	res, err := s.Sess.Run(prog, cfg, core.ExecOptions{Cluster: cl, Workers: s.Workers, Recorder: rec, Chaos: s.Chaos})
	if err != nil {
		return nil, err
	}
	return res.Metrics, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d0(v int) string     { return fmt.Sprintf("%d", v) }

func gb(bytes int64) string { return fmt.Sprintf("%.1f", float64(bytes)/1e9) }

// E01MachineCatalog reproduces the machine-type table (paper's Table 1
// analogue): the provisioning alternatives and their prices.
func (s *Suite) E01MachineCatalog() (*Result, error) {
	r := newResult("E01", "Machine type catalog (EC2 2013-era analogue)",
		"type", "ECU", "cores", "mem GB", "disk MB/s", "net MB/s", "$/hour")
	for _, m := range cloud.Catalog() {
		r.Table.AddRow(m.Name, f1(m.ECU), d0(m.Cores), f1(m.MemoryGB),
			f1(m.DiskMBps), f1(m.NetMBps), f3(m.PricePerHour))
	}
	r.Checks["types"] = float64(len(cloud.Catalog()))
	return r, nil
}

// E02WorkloadSuite reproduces the workload summary (paper's Table 2
// analogue): the statistical programs, their logical work and the plans
// Cumulon compiles for them.
func (s *Suite) E02WorkloadSuite() (*Result, error) {
	r := newResult("E02", "Workload suite: programs, logical work, compiled plans",
		"workload", "inputs GB", "jobs", "mul jobs", "Gflops")
	for _, w := range paperWorkloads() {
		pl, err := plan.Compile(w.Prog, plan.Config{TileSize: tileSize, Densities: w.Densities})
		if err != nil {
			return nil, err
		}
		pl.AutoSplit(32)
		var inBytes int64
		for _, in := range pl.Inputs {
			inBytes += in.EstBytes()
		}
		muls := 0
		var flops int64
		for _, j := range pl.Jobs {
			if j.Kind == plan.MulKind {
				muls++
			}
			flops += plan.EstimateJob(j).TotalFlops
		}
		r.Table.AddRow(w.Name, gb(inBytes), d0(len(pl.Jobs)), d0(muls),
			fmt.Sprintf("%.0f", float64(flops)/1e9))
		r.Checks["jobs:"+w.Name] = float64(len(pl.Jobs))
	}
	return r, nil
}
