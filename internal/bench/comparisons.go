package bench

import (
	"fmt"

	"cumulon/internal/mapred"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

// Shared experiment parameters.
const (
	tileSize = 2048
	// The default comparison cluster, sized like the paper's mid-range
	// Hadoop deployments.
	cmpNodes = 16
	cmpSlots = 2
	cmpType  = "m1.large"
)

// paperWorkloads returns the paper-scale workload suite used across
// experiments (E02, E12).
func paperWorkloads() []workloads.Workload {
	return []workloads.Workload{
		workloads.GNMF(80000, 40000, 10, 1, 0.01),
		workloads.RSVD(100000, 20000, 256, 1),
		workloads.Regression(1000000, 1000, 1, 1e-6),
		workloads.MatMul(32768, 32768, 32768),
	}
}

// runMR executes a workload on the MapReduce baseline with matching
// cluster parameters.
func (s *Suite) runMR(w workloads.Workload, nodes int) (*mapred.RunMetrics, error) {
	e, err := mapred.New(mapred.Config{
		Cluster:     s.cluster(cmpType, nodes, cmpSlots),
		BlockSize:   tileSize,
		Seed:        s.Seed,
		NoiseFactor: 0.08,
		Workers:     s.Workers,
		Recorder:    s.Recorder,
	})
	if err != nil {
		return nil, err
	}
	m, _, err := e.Run(w.Prog, w.Densities, nil)
	return m, err
}

// E03MatMulVsMR reproduces the headline engine comparison on dense matrix
// multiply: Cumulon's map-only fused execution versus MapReduce RMM/CPMM,
// as matrix size grows.
func (s *Suite) E03MatMulVsMR() (*Result, error) {
	r := newResult("E03", "Dense matmul: Cumulon vs MapReduce baselines (16 x m1.large)",
		"n", "cumulon s", "MR-RMM s", "MR-CPMM s", "MR-auto s", "speedup vs auto")
	cl := s.cluster(cmpType, cmpNodes, cmpSlots)
	for _, n := range []int{8192, 16384, 32768, 65536} {
		w := workloads.MatMul(n, n, n)
		m, err := s.runVirtual(w.Prog, plan.Config{TileSize: tileSize}, cl)
		if err != nil {
			return nil, err
		}
		var mrTimes [3]float64
		for i, strat := range []mapred.Strategy{mapred.RMM, mapred.CPMM, mapred.Auto} {
			e, err := mapred.New(mapred.Config{
				Cluster:     cl,
				BlockSize:   tileSize,
				Strategy:    strat,
				Seed:        s.Seed,
				NoiseFactor: 0.08,
			})
			if err != nil {
				return nil, err
			}
			mm, _, err := e.Run(w.Prog, nil, nil)
			if err != nil {
				return nil, err
			}
			mrTimes[i] = mm.TotalSeconds
		}
		speedup := mrTimes[2] / m.TotalSeconds
		r.Table.AddRow(d0(n), f1(m.TotalSeconds), f1(mrTimes[0]), f1(mrTimes[1]),
			f1(mrTimes[2]), f2(speedup))
		r.Checks[fmt.Sprintf("speedup:%d", n)] = speedup
	}
	r.Table.Notes = "speedup = MR-auto / Cumulon; expected >= 1.5x, growing with n"
	return r, nil
}

// E04GNMFVsMR reproduces the statistical-workload comparison: one GNMF
// iteration on growing sparse inputs, Cumulon vs the MapReduce baseline
// (the SystemML-style execution of the same update rules).
func (s *Suite) E04GNMFVsMR() (*Result, error) {
	r := newResult("E04", "GNMF (1 iteration): Cumulon vs MapReduce (16 x m1.large)",
		"m x n", "cumulon s", "cumulon jobs", "MR s", "MR jobs", "speedup")
	cl := s.cluster(cmpType, cmpNodes, cmpSlots)
	for _, m := range []int{20000, 40000, 80000} {
		n := m / 2
		w := workloads.GNMF(m, n, 10, 1, 0.05)
		cm, err := s.runVirtual(w.Prog, plan.Config{TileSize: tileSize, Densities: w.Densities}, cl)
		if err != nil {
			return nil, err
		}
		mm, err := s.runMR(w, cmpNodes)
		if err != nil {
			return nil, err
		}
		speedup := mm.TotalSeconds / cm.TotalSeconds
		r.Table.AddRow(fmt.Sprintf("%dx%d", m, n), f1(cm.TotalSeconds), d0(len(cm.Jobs)),
			f1(mm.TotalSeconds), d0(len(mm.Jobs)), f2(speedup))
		r.Checks[fmt.Sprintf("speedup:%d", m)] = speedup
		r.Checks[fmt.Sprintf("jobs:cumulon:%d", m)] = float64(len(cm.Jobs))
		r.Checks[fmt.Sprintf("jobs:mr:%d", m)] = float64(len(mm.Jobs))
	}
	r.Table.Notes = "Cumulon fuses each update into fewer jobs than one-job-per-operator MR"
	return r, nil
}
