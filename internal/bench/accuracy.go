package bench

import (
	"fmt"

	"cumulon/internal/cloud"
	"cumulon/internal/exec"
	"cumulon/internal/model"
	"cumulon/internal/obs"
	"cumulon/internal/plan"
	"cumulon/internal/sim"
	"cumulon/internal/workloads"
)

// E07TaskModelAccuracy reproduces the task-level model validation: fit
// task-time models per machine type on the calibration suite, then
// evaluate them on held-out runs (different seed, different workload).
func (s *Suite) E07TaskModelAccuracy() (*Result, error) {
	r := newResult("E07", "Task-time model accuracy (held-out workloads)",
		"machine", "slots", "obs", "holdout tasks", "mean rel err")
	for _, name := range []string{"m1.small", "m1.large", "c1.xlarge"} {
		mt, err := cloud.TypeByName(name)
		if err != nil {
			return nil, err
		}
		slots := mt.Cores
		cal, err := model.Calibrate(mt, slots, s.Seed)
		if err != nil {
			return nil, err
		}
		// Holdout: a workload the calibration suite never runs, on a
		// different cluster size and seed.
		cl, err := cloud.NewCluster(mt, 6, slots)
		if err != nil {
			return nil, err
		}
		w := workloads.GNMF(30000, 15000, 10, 1, 0.05)
		pl, err := plan.Compile(w.Prog, plan.Config{TileSize: tileSize, Densities: w.Densities})
		if err != nil {
			return nil, err
		}
		pl.AutoSplit(cl.TotalSlots())
		eng, err := exec.New(exec.Config{Cluster: cl, Seed: s.Seed + 999, NoiseFactor: 0.08})
		if err != nil {
			return nil, err
		}
		for _, in := range pl.Inputs {
			if err := eng.LoadVirtual(in); err != nil {
				return nil, err
			}
		}
		m, err := eng.Run(pl)
		if err != nil {
			return nil, err
		}
		holdout := model.ObsFromTasks(m.Tasks, 3)
		mre := model.MeanRelError(cal.Model, holdout)
		r.Table.AddRow(name, d0(slots), d0(cal.Model.N), d0(len(holdout)), f3(mre))
		r.Checks["mre:"+name] = mre
	}
	r.Table.Notes = "paper-style validation: errors around the straggler noise level (~10%)"
	return r, nil
}

// E08SimAccuracy reproduces the program-level model validation: the
// optimizer's simulator predictions versus actual engine runs, across
// cluster sizes. Both sides record span traces, so beyond the end-to-end
// relative error the comparison is structural: obs.DiffTraces aligns the
// predicted and executed job spans by job id and reports the worst
// per-job error, catching compensating mispredictions a matching total
// would hide.
func (s *Suite) E08SimAccuracy() (*Result, error) {
	r := newResult("E08", "Simulator vs engine: GNMF program time across cluster sizes",
		"nodes", "predicted s", "actual s", "rel err", "worst job rel err")
	mt, err := cloud.TypeByName(cmpType)
	if err != nil {
		return nil, err
	}
	tm, err := s.Sess.Optimizer().ModelFor(mt, cmpSlots)
	if err != nil {
		return nil, err
	}
	w := workloads.GNMF(40000, 20000, 10, 1, 0.02)
	cfg := plan.Config{TileSize: tileSize, Densities: w.Densities}
	worst := 0.0
	worstJob := 0.0
	for _, nodes := range []int{2, 4, 8, 16, 32} {
		cl := s.cluster(cmpType, nodes, cmpSlots)
		pl, err := plan.Compile(w.Prog, cfg)
		if err != nil {
			return nil, err
		}
		pl.AutoSplit(cl.TotalSlots())
		predTrace := obs.NewTrace()
		p := sim.New(tm, cl)
		p.Rec = predTrace
		pred := p.PredictPlan(pl)
		actTrace := obs.NewTrace()
		m, err := s.runVirtualRec(w.Prog, cfg, cl, actTrace)
		if err != nil {
			return nil, err
		}
		rel := abs(pred-m.TotalSeconds) / m.TotalSeconds
		if rel > worst {
			worst = rel
		}
		d, err := obs.DiffTraces(actTrace, predTrace)
		if err != nil {
			return nil, err
		}
		if d.WorstJobRelErr > worstJob {
			worstJob = d.WorstJobRelErr
		}
		r.Table.AddRow(d0(nodes), f1(pred), f1(m.TotalSeconds), f3(rel), f3(d.WorstJobRelErr))
		r.Checks[fmt.Sprintf("rel:%d", nodes)] = rel
		r.Checks[fmt.Sprintf("jobworst:%d", nodes)] = d.WorstJobRelErr
	}
	r.Checks["worst"] = worst
	r.Checks["jobworst"] = worstJob
	return r, nil
}

// E09Speedup reproduces the scalability study: program time versus
// cluster size for GNMF and RSVD, with speedup and parallel efficiency.
func (s *Suite) E09Speedup() (*Result, error) {
	r := newResult("E09", "Scalability: time vs cluster size (m1.large)",
		"nodes", "gnmf s", "gnmf speedup", "rsvd s", "rsvd speedup")
	gn := workloads.GNMF(200000, 100000, 10, 1, 0.05)
	rs := workloads.RSVD(65536, 16384, 256, 1)
	sizes := []int{2, 4, 8, 16, 32}
	var gnBase, rsBase float64
	for i, nodes := range sizes {
		cl := s.cluster(cmpType, nodes, cmpSlots)
		gm, err := s.runVirtual(gn.Prog, plan.Config{TileSize: tileSize, Densities: gn.Densities}, cl)
		if err != nil {
			return nil, err
		}
		rm, err := s.runVirtual(rs.Prog, plan.Config{TileSize: tileSize}, cl)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			gnBase, rsBase = gm.TotalSeconds, rm.TotalSeconds
		}
		gnSp := gnBase / gm.TotalSeconds
		rsSp := rsBase / rm.TotalSeconds
		r.Table.AddRow(d0(nodes), f1(gm.TotalSeconds), f2(gnSp), f1(rm.TotalSeconds), f2(rsSp))
		r.Checks[fmt.Sprintf("gnmf:%d", nodes)] = gm.TotalSeconds
		r.Checks[fmt.Sprintf("rsvdSpeedup:%d", nodes)] = rsSp
	}
	r.Table.Notes = "speedup relative to 2 nodes; sublinear due to job startup and I/O replication"
	return r, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// E21Distribution validates the probabilistic simulator: Monte Carlo
// completion-time percentiles versus the engine's empirical distribution
// over independent runs, plus the premium a 95%-confidence deadline
// promise costs over the point-estimate optimum.
func (s *Suite) E21Distribution() (*Result, error) {
	r := newResult("E21", "Probabilistic prediction: percentiles vs empirical runs (GNMF, 8 x m1.large)",
		"quantity", "predicted", "empirical (20 runs)")
	mt, err := cloud.TypeByName(cmpType)
	if err != nil {
		return nil, err
	}
	tm, err := s.Sess.Optimizer().ModelFor(mt, cmpSlots)
	if err != nil {
		return nil, err
	}
	cl := s.cluster(cmpType, 8, cmpSlots)
	w := workloads.GNMF(40000, 20000, 10, 1, 0.02)
	cfg := plan.Config{TileSize: tileSize, Densities: w.Densities}

	pl, err := plan.Compile(w.Prog, cfg)
	if err != nil {
		return nil, err
	}
	pl.AutoSplit(cl.TotalSlots())
	dist := sim.New(tm, cl).PredictPlanDistribution(pl, 80, s.Seed)

	var times []float64
	for seed := int64(0); seed < 20; seed++ {
		pl2, err := plan.Compile(w.Prog, cfg)
		if err != nil {
			return nil, err
		}
		pl2.AutoSplit(cl.TotalSlots())
		eng, err := exec.New(exec.Config{Cluster: cl, Seed: 1000 + seed, NoiseFactor: 0.08})
		if err != nil {
			return nil, err
		}
		for _, in := range pl2.Inputs {
			if err := eng.LoadVirtual(in); err != nil {
				return nil, err
			}
		}
		m, err := eng.Run(pl2)
		if err != nil {
			return nil, err
		}
		times = append(times, m.TotalSeconds)
	}
	sortFloats(times)
	empP50 := times[len(times)/2]
	empP95 := times[int(0.95*float64(len(times)))]

	r.Table.AddRow("median s", f1(dist.P50), f1(empP50))
	r.Table.AddRow("p95 s", f1(dist.P95), f1(empP95))
	r.Checks["p50rel"] = abs(dist.P50-empP50) / empP50
	r.Checks["p95rel"] = abs(dist.P95-empP95) / empP95

	// Confidence premium on a deadline halfway down the frontier.
	req := s.optRequest(w, 16)
	req.DeadlineSec = empP50 * 1.5
	point, err := s.Sess.Optimizer().MinCostForDeadline(req)
	if err != nil {
		return nil, err
	}
	req.Confidence = 0.95
	req.Trials = 20
	conf, err := s.Sess.Optimizer().MinCostForDeadline(req)
	if err != nil {
		return nil, err
	}
	if point.Met && conf.Met {
		r.Table.AddRow("deadline cost $ (point)", f2(point.Best.Cost), "-")
		r.Table.AddRow("deadline cost $ (95% conf)", f2(conf.Best.Cost), "-")
		r.Checks["confPremium"] = conf.Best.Cost / point.Best.Cost
	}
	r.Table.Notes = "residual-resampling simulation; confidence promises cost at most a deployment step more"
	return r, nil
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k] < v[k-1]; k-- {
			v[k], v[k-1] = v[k-1], v[k]
		}
	}
}
