package sim

import (
	"math"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/exec"
	"cumulon/internal/lang"
	"cumulon/internal/model"
	"cumulon/internal/plan"
)

func calibrated(t *testing.T, typeName string, slots int) (*model.TaskModel, cloud.MachineType) {
	t.Helper()
	mt, err := cloud.TypeByName(typeName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Calibrate(mt, slots, 11)
	if err != nil {
		t.Fatal(err)
	}
	return res.Model, mt
}

func compile(t *testing.T, src string, tile int) *plan.Plan {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(prog, plan.Config{TileSize: tile})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

const matmulSrc = `
input A 16384 16384
input B 16384 16384
C = A * B
output C
`

// The headline accuracy property (paper's model-validation experiments):
// simulator predictions track the engine within a modest relative error
// across cluster sizes.
func TestPredictionTracksEngine(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	for _, nodes := range []int{2, 4, 8, 16} {
		cluster, err := cloud.NewCluster(mt, nodes, 2)
		if err != nil {
			t.Fatal(err)
		}
		pl := compile(t, matmulSrc, 2048)
		pl.AutoSplit(cluster.TotalSlots())
		pred := New(tm, cluster).PredictPlan(pl)

		e, err := exec.New(exec.Config{Cluster: cluster, Seed: 5, NoiseFactor: 0.08})
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(pred-m.TotalSeconds) / m.TotalSeconds
		if rel > 0.25 {
			t.Fatalf("nodes=%d: prediction %.1fs vs actual %.1fs (rel err %.2f)",
				nodes, pred, m.TotalSeconds, rel)
		}
	}
}

func TestPredictMonotoneInClusterSize(t *testing.T) {
	tm, mt := calibrated(t, "c1.medium", 2)
	prev := math.Inf(1)
	for _, nodes := range []int{1, 2, 4, 8, 16, 32} {
		cluster, _ := cloud.NewCluster(mt, nodes, 2)
		pl := compile(t, matmulSrc, 2048)
		p := New(tm, cluster)
		total := p.OptimizeSplits(pl, 0)
		if total > prev*1.05 {
			t.Fatalf("predicted time grew with cluster size at n=%d: %v -> %v", nodes, prev, total)
		}
		prev = total
	}
}

func TestBestSplitBeatsWorstSplit(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	cluster, _ := cloud.NewCluster(mt, 8, 2)
	p := New(tm, cluster)
	pl := compile(t, matmulSrc, 2048)
	j := pl.Jobs[0]

	best, bestTime := p.BestSplit(j, 0)
	if err := best.Validate(j.ITiles(), j.JTiles(), j.KTiles(), j.Kind); err != nil {
		t.Fatal(err)
	}
	// The degenerate one-task split must be no better than the optimum.
	j.Split = plan.Split{CI: 1, CJ: 1, CK: 1}
	serial := p.PredictJob(j)
	if bestTime > serial {
		t.Fatalf("best split %v (%.1fs) worse than serial (%.1fs)", best, bestTime, serial)
	}
	if bestTime >= serial*0.5 {
		t.Fatalf("16-way cluster should at least halve the serial time: %v vs %v", bestTime, serial)
	}
}

func TestMemoryConstraintShrinksChunks(t *testing.T) {
	tm, mt := calibrated(t, "m1.small", 1)
	cluster, _ := cloud.NewCluster(mt, 4, 1)
	p := New(tm, cluster)
	pl := compile(t, matmulSrc, 2048)
	j := pl.Jobs[0]

	unbounded, _ := p.BestSplit(j, 0)
	j.Split = unbounded
	memUnbounded := plan.EstTaskMemBytes(j)

	bound := memUnbounded / 4
	bounded, _ := p.BestSplit(j, bound)
	j.Split = bounded
	if got := plan.EstTaskMemBytes(j); got > bound {
		t.Fatalf("memory bound violated: %d > %d (split %v)", got, bound, bounded)
	}
}

func TestOptimizeSplitsImprovesOnAutoSplit(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	cluster, _ := cloud.NewCluster(mt, 8, 2)
	p := New(tm, cluster)

	auto := compile(t, matmulSrc, 2048)
	auto.AutoSplit(cluster.TotalSlots())
	autoTime := p.PredictPlan(auto)

	opt := compile(t, matmulSrc, 2048)
	optTime := p.OptimizeSplits(opt, 0)
	if optTime > autoTime*1.001 {
		t.Fatalf("optimized splits (%.1fs) worse than heuristic (%.1fs)", optTime, autoTime)
	}
}

func TestPredictJobIncludesStartup(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	cluster, _ := cloud.NewCluster(mt, 2, 2)
	p := New(tm, cluster)
	p.JobStartup = 100
	pl := compile(t, "input A 64 64\nB = A\noutput B", 32)
	if got := p.PredictJob(pl.Jobs[0]); got < 100 {
		t.Fatalf("startup not included: %v", got)
	}
}

func TestLocalFractionBounds(t *testing.T) {
	tm := &model.TaskModel{B0: 1}
	mt, _ := cloud.TypeByName("m1.small")
	for _, nodes := range []int{1, 2, 3, 10, 100} {
		cluster, _ := cloud.NewCluster(mt, nodes, 1)
		p := New(tm, cluster)
		f := p.localFraction()
		if f <= 0 || f > 1 {
			t.Fatalf("nodes=%d: local fraction %v out of range", nodes, f)
		}
	}
}

func TestPredictPlanDistribution(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	cluster, _ := cloud.NewCluster(mt, 8, 2)
	p := New(tm, cluster)
	pl := compile(t, matmulSrc, 2048)
	pl.AutoSplit(cluster.TotalSlots())

	d := p.PredictPlanDistribution(pl, 40, 9)
	if d.Trials != 40 {
		t.Fatalf("trials: %d", d.Trials)
	}
	if !(d.P50 <= d.P95) {
		t.Fatalf("quantiles out of order: p50=%v p95=%v", d.P50, d.P95)
	}
	if d.Mean <= 0 {
		t.Fatalf("mean: %v", d.Mean)
	}
	// The point estimate should sit inside the distribution's bulk.
	point := p.PredictPlan(pl)
	if point < d.P50*0.7 || point > d.P95*1.3 {
		t.Fatalf("point estimate %v far outside [p50=%v, p95=%v]", point, d.P50, d.P95)
	}
}

// The validation property: Monte Carlo percentiles bracket the engine's
// empirical completion-time distribution across seeds.
func TestDistributionBracketsEngineRuns(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	cluster, _ := cloud.NewCluster(mt, 8, 2)
	pl := compile(t, matmulSrc, 2048)
	pl.AutoSplit(cluster.TotalSlots())
	d := New(tm, cluster).PredictPlanDistribution(pl, 60, 5)

	within := 0
	const runs = 12
	for seed := int64(0); seed < runs; seed++ {
		e, err := exec.New(exec.Config{Cluster: cluster, Seed: 100 + seed, NoiseFactor: 0.08})
		if err != nil {
			t.Fatal(err)
		}
		pl2 := compile(t, matmulSrc, 2048)
		pl2.AutoSplit(cluster.TotalSlots())
		for _, in := range pl2.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl2)
		if err != nil {
			t.Fatal(err)
		}
		if m.TotalSeconds >= d.P50*0.85 && m.TotalSeconds <= d.P95*1.15 {
			within++
		}
	}
	if within < runs*2/3 {
		t.Fatalf("only %d/%d engine runs inside the predicted band [%.0f, %.0f]",
			within, runs, d.P50*0.85, d.P95*1.15)
	}
}

func TestPredictPlanQuantileMonotone(t *testing.T) {
	tm, mt := calibrated(t, "c1.medium", 2)
	cluster, _ := cloud.NewCluster(mt, 4, 2)
	p := New(tm, cluster)
	pl := compile(t, matmulSrc, 2048)
	pl.AutoSplit(cluster.TotalSlots())
	q50 := p.PredictPlanQuantile(pl, 30, 1, 0.5)
	q80 := p.PredictPlanQuantile(pl, 30, 1, 0.8)
	q95 := p.PredictPlanQuantile(pl, 30, 1, 0.95)
	if !(q50 <= q80 && q80 <= q95) {
		t.Fatalf("quantiles not monotone: %v %v %v", q50, q80, q95)
	}
}

// TestPredictPlanQuantileTailResolves: a 0.99-confidence ask must read the
// actual tail of the Monte Carlo samples, not clamp to P95 — with enough
// trials the noise residuals produce a right tail strictly above P95.
func TestPredictPlanQuantileTailResolves(t *testing.T) {
	tm, mt := calibrated(t, "c1.medium", 2)
	cluster, _ := cloud.NewCluster(mt, 4, 2)
	p := New(tm, cluster)
	pl := compile(t, matmulSrc, 2048)
	pl.AutoSplit(cluster.TotalSlots())

	const trials, seed = 200, 1
	d := p.PredictPlanDistribution(pl, trials, seed)
	q99 := p.PredictPlanQuantile(pl, trials, seed, 0.99)
	if !(q99 > d.P95) {
		t.Fatalf("q99=%v does not exceed P95=%v; tail clamped", q99, d.P95)
	}
	q100 := p.PredictPlanQuantile(pl, trials, seed, 1)
	if q99 > q100 {
		t.Fatalf("q99=%v above the sample maximum %v", q99, q100)
	}
}

// TestQuantileOfGuards: degenerate inputs must not panic — empty samples
// yield 0 and out-of-range q clamps to the extremes.
func TestQuantileOfGuards(t *testing.T) {
	if v := quantileOf(nil, 0.5); v != 0 {
		t.Fatalf("quantileOf(nil) = %v, want 0", v)
	}
	s := []float64{1, 2, 3, 4}
	if v := quantileOf(s, -0.5); v != 1 {
		t.Fatalf("quantileOf(q<0) = %v, want first sample", v)
	}
	if v := quantileOf(s, 2); v != 4 {
		t.Fatalf("quantileOf(q>1) = %v, want last sample", v)
	}
}

func TestPredictPlanOverlapTracksEngine(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	cluster, _ := cloud.NewCluster(mt, 8, 2)
	src := `
input A 16384 16384
input B 16384 16384
C = A * B
D = B * A
E = C .* D
output E
`
	build := func() *plan.Plan {
		pl := compile(t, src, 2048)
		// Under-split so overlap matters.
		for _, j := range pl.Jobs {
			j.Split = plan.Split{CI: 2, CJ: 2, CK: 1}
		}
		return pl
	}
	p := New(tm, cluster)
	pl := build()
	seq := p.PredictPlan(pl)
	ovl := p.PredictPlanOverlap(pl)
	if ovl >= seq {
		t.Fatalf("overlap prediction (%v) not below sequential (%v)", ovl, seq)
	}
	// Compare against the engine in overlap mode.
	e, err := exec.New(exec.Config{Cluster: cluster, Seed: 5, NoiseFactor: 0.08, OverlapJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	pl2 := build()
	for _, in := range pl2.Inputs {
		if err := e.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl2)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(ovl-m.TotalSeconds) / m.TotalSeconds
	if rel > 0.25 {
		t.Fatalf("overlap prediction %v vs engine %v (rel %v)", ovl, m.TotalSeconds, rel)
	}
}
