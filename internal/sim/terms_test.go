package sim

import (
	"math"
	"testing"

	"cumulon/internal/cloud"
)

// PlanTerms must decompose the prediction consistently: non-negative
// terms, a zero rack term (the predictor's two-level locality model), and
// a total that is a perfectly-packed lower bound on PredictPlan.
func TestPlanTermsDecomposition(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	cluster, err := cloud.NewCluster(mt, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := compile(t, matmulSrc, 2048)
	pl.AutoSplit(cluster.TotalSlots())
	p := New(tm, cluster)
	terms := p.PlanTerms(pl)

	if terms.ComputeSec <= 0 || terms.LocalSec <= 0 || terms.StartupSec <= 0 {
		t.Fatalf("expected positive compute/local/startup terms: %+v", terms)
	}
	if terms.RemoteSec < 0 {
		t.Fatalf("negative remote term: %+v", terms)
	}
	if terms.RackSec != 0 {
		t.Fatalf("rack term must be zero under the two-level locality model: %+v", terms)
	}

	pred := p.PredictPlan(pl)
	total := terms.Total()
	if total <= 0 || total > pred+1e-6 {
		t.Fatalf("terms total %.2f must lower-bound prediction %.2f", total, pred)
	}
	// The bound should also be meaningful, not vacuous.
	if total < pred*0.25 {
		t.Fatalf("terms total %.2f implausibly far below prediction %.2f", total, pred)
	}
}

// Term deltas between deployments must mirror their structural difference:
// fewer slots concentrate the same task-seconds, raising per-slot terms.
func TestPlanTermsScaleWithSlots(t *testing.T) {
	tm, mt := calibrated(t, "m1.large", 2)
	small, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := cloud.NewCluster(mt, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := compile(t, matmulSrc, 2048)
	pl.AutoSplit(small.TotalSlots())

	ts := New(tm, small).PlanTerms(pl)
	tb := New(tm, big).PlanTerms(pl)
	d := ts.Sub(tb)
	if d.ComputeSec <= 0 {
		t.Fatalf("4-node compute term should exceed 16-node: %+v vs %+v", ts, tb)
	}
	ratio := ts.ComputeSec / tb.ComputeSec
	if math.Abs(ratio-4) > 0.5 {
		t.Fatalf("compute term should scale ~4x with 4x fewer slots, got %.2fx", ratio)
	}
}
