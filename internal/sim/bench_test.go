package sim

import (
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/model"
	"cumulon/internal/plan"
)

// BenchmarkOptimizeSplits measures the optimizer's inner loop: a full
// per-job split sweep for a GNMF-sized plan.
func BenchmarkOptimizeSplits(b *testing.B) {
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		b.Fatal(err)
	}
	res, err := model.Calibrate(mt, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 16, 2)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lang.Parse(`
input V 80000 40000 sparse
input W 80000 10
input H 10 40000
H = H .* (W' * V) ./ ((W' * W) * H)
W = W .* (V * H') ./ (W * (H * H'))
output W
output H
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := plan.Compile(prog, plan.Config{TileSize: 2048, Densities: map[string]float64{"V": 0.05}})
		if err != nil {
			b.Fatal(err)
		}
		p := New(res.Model, cl)
		p.Coarse = true
		p.OptimizeSplits(pl, 0)
	}
}
