// Package sim predicts the completion time of a physical plan on a
// hypothetical deployment, using the fitted task-time models of package
// model and a deterministic simulation of Cumulon's slot scheduler. The
// optimizer calls it thousands of times per search, so prediction must be
// cheap: per-job work comes from the planner's closed-form estimates
// (plan.EstimateJob), locality from the replication geometry, and phase
// times from wave-based scheduling.
package sim

import (
	"math"

	"cumulon/internal/cloud"
	"cumulon/internal/model"
	"cumulon/internal/obs"
	"cumulon/internal/plan"
)

// Predictor predicts job and plan times for one concrete deployment.
type Predictor struct {
	Model       *model.TaskModel
	Cluster     cloud.Cluster
	Replication int     // DFS replication factor (default 3)
	JobStartup  float64 // per-job overhead, must match the engine's
	// Coarse switches phase-time estimation from exact greedy list
	// scheduling to the wave approximation. The optimizer's split sweeps
	// use coarse mode (thousands of evaluations); final reporting uses
	// exact mode.
	Coarse bool
	// Rec, when set, receives the predicted timeline of PredictPlan as a
	// span trace (program span plus one job span per job, at cumulative
	// offsets), so predictions can be compared structurally against an
	// executed trace with obs.DiffTraces. nil disables recording.
	Rec obs.Recorder
}

// New constructs a predictor with engine-matching defaults.
func New(m *model.TaskModel, cluster cloud.Cluster) *Predictor {
	return &Predictor{Model: m, Cluster: cluster, Replication: 3, JobStartup: 6}
}

func (p *Predictor) replication() int {
	r := p.Replication
	if r <= 0 {
		r = 3
	}
	if r > p.Cluster.Nodes {
		r = p.Cluster.Nodes
	}
	return r
}

// localFraction estimates how much of a task's read bytes are served from
// a local replica: each block has R replicas over n nodes, plus a small
// bonus for the scheduler's locality preference on the task's first input.
func (p *Predictor) localFraction() float64 {
	n := float64(p.Cluster.Nodes)
	r := float64(p.replication())
	f := r/n + 0.1
	if f > 1 {
		f = 1
	}
	return f
}

// TaskSeconds predicts one task's duration from its exact work profile.
func (p *Predictor) TaskSeconds(w plan.TaskWork) float64 {
	repl := int64(p.replication())
	lf := p.localFraction()
	local := int64(float64(w.ReadBytes) * lf)
	remote := w.ReadBytes - local
	disk := local + w.WriteBytes
	net := remote + w.WriteBytes*(repl-1)
	return p.Model.Predict(w.Flops, disk, net)
}

// PredictJob returns the predicted wall-clock seconds of one job under its
// current split, including job startup. Each phase is list-scheduled
// task-by-task over the cluster's slots — the same greedy discipline the
// engine uses — so uneven chunk sizes and partial waves are captured.
func (p *Predictor) PredictJob(j *plan.Job) float64 {
	total := p.JobStartup
	slots := p.Cluster.TotalSlots()
	for _, phase := range plan.TaskProfiles(j) {
		if p.Coarse {
			total += p.coarsePhase(phase, slots)
			continue
		}
		free := make([]float64, slots)
		end := 0.0
		for _, w := range phase {
			// Earliest-free slot.
			best := 0
			for i := 1; i < slots; i++ {
				if free[i] < free[best] {
					best = i
				}
			}
			free[best] += p.TaskSeconds(w)
			if free[best] > end {
				end = free[best]
			}
		}
		total += end
	}
	return total
}

// coarsePhase approximates a phase's makespan as full waves of the mean
// task duration, bounded below by the longest task.
func (p *Predictor) coarsePhase(phase []plan.TaskWork, slots int) float64 {
	var total, maxDur float64
	for _, w := range phase {
		d := p.TaskSeconds(w)
		total += d
		if d > maxDur {
			maxDur = d
		}
	}
	n := len(phase)
	if n == 0 {
		return 0
	}
	waves := math.Ceil(float64(n) / float64(slots))
	t := waves * total / float64(n)
	if t < maxDur {
		t = maxDur
	}
	return t
}

// PredictPlan returns the predicted end-to-end seconds of the plan: jobs
// execute sequentially in dependency order, as in the engine. When Rec is
// set, the predicted timeline is recorded as a span trace.
func (p *Predictor) PredictPlan(pl *plan.Plan) float64 {
	rec := obs.OrNop(p.Rec)
	prog := rec.Start(obs.KindProgram, "program", obs.NoSpan, 0)
	var total float64
	for _, j := range pl.Jobs {
		sec := p.PredictJob(j)
		if rec.Enabled() {
			js := rec.Start(obs.KindJob, j.Name, prog, total)
			rec.SetAttrs(js, obs.Attrs{JobID: j.ID, Deps: j.Deps})
			rec.End(js, total+sec)
		}
		total += sec
	}
	rec.End(prog, total)
	return total
}

// PredictPlanOverlap predicts the plan under the engine's OverlapJobs
// mode: a job is released as soon as its dependencies finish and its
// tasks share the persistent slot pool with everything already running —
// the same greedy discipline the engine uses.
func (p *Predictor) PredictPlanOverlap(pl *plan.Plan) float64 {
	slots := make([]float64, p.Cluster.TotalSlots())
	jobEnds := map[int]float64{}
	makespan := 0.0
	for _, j := range pl.Jobs {
		ready := 0.0
		for _, d := range j.Deps {
			if jobEnds[d] > ready {
				ready = jobEnds[d]
			}
		}
		clock := ready + p.JobStartup
		for _, phase := range plan.TaskProfiles(j) {
			end := clock
			for _, w := range phase {
				best := 0
				avail := func(i int) float64 {
					if slots[i] < clock {
						return clock
					}
					return slots[i]
				}
				for i := 1; i < len(slots); i++ {
					if avail(i) < avail(best) {
						best = i
					}
				}
				start := avail(best)
				slots[best] = start + p.TaskSeconds(w)
				if slots[best] > end {
					end = slots[best]
				}
			}
			clock = end
		}
		jobEnds[j.ID] = clock
		if clock > makespan {
			makespan = clock
		}
	}
	return makespan
}

// BestSplit sweeps the split candidates of a job and returns the one with
// the lowest predicted time whose estimated per-task memory fits in
// memBytesPerSlot (0 disables the memory constraint). The job's split is
// left untouched; callers assign the result.
func (p *Predictor) BestSplit(j *plan.Job, memBytesPerSlot int64) (plan.Split, float64) {
	old := j.Split
	defer func() { j.Split = old }()

	maxTasks := 8 * p.Cluster.TotalSlots()
	if maxTasks > 4096 {
		maxTasks = 4096
	}
	cands := plan.SplitCandidates(j, maxTasks)
	best := plan.Split{}
	bestTime := math.Inf(1)
	bestMem := int64(math.MaxInt64)
	var fallback plan.Split
	for _, s := range cands {
		j.Split = s
		mem := plan.EstTaskMemBytes(j)
		if mem < bestMem {
			bestMem = mem
			fallback = s
		}
		if memBytesPerSlot > 0 && mem > memBytesPerSlot {
			continue
		}
		t := p.PredictJob(j)
		if t < bestTime {
			bestTime = t
			best = s
		}
	}
	if math.IsInf(bestTime, 1) {
		// Nothing fits the memory bound: take the smallest-footprint
		// split (the engine will still run; the model flags the risk).
		j.Split = fallback
		return fallback, p.PredictJob(j)
	}
	return best, bestTime
}

// OptimizeSplits assigns the best predicted split to every job and
// returns the plan's predicted total seconds.
func (p *Predictor) OptimizeSplits(pl *plan.Plan, memBytesPerSlot int64) float64 {
	var total float64
	for _, j := range pl.Jobs {
		s, t := p.BestSplit(j, memBytesPerSlot)
		j.Split = s
		total += t
	}
	return total
}
