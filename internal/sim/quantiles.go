package sim

import (
	"math/rand"
	"sort"

	"cumulon/internal/plan"
)

// Distribution summarizes a Monte Carlo completion-time estimate.
type Distribution struct {
	Mean   float64
	P50    float64
	P95    float64
	Trials int
}

// quantileOf returns the q-th (0..1) quantile of sorted samples. q is
// clamped into [0, 1] and empty input yields 0 rather than panicking.
func quantileOf(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	i := int(q * float64(len(samples)))
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return samples[i]
}

// planSamples runs the Monte Carlo trials and returns the sorted
// completion-time samples: each trial schedules every task with a
// duration drawn as model-prediction times an empirical residual (the
// paper's simulation over measured task-time distributions).
func (p *Predictor) planSamples(pl *plan.Plan, trials int, seed int64) []float64 {
	if trials <= 0 {
		trials = 30
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, trials)
	slots := p.Cluster.TotalSlots()
	for t := 0; t < trials; t++ {
		total := 0.0
		for _, j := range pl.Jobs {
			total += p.JobStartup
			for _, phase := range plan.TaskProfiles(j) {
				free := make([]float64, slots)
				end := 0.0
				for _, w := range phase {
					best := 0
					for i := 1; i < slots; i++ {
						if free[i] < free[best] {
							best = i
						}
					}
					d := p.TaskSeconds(w) * p.Model.SampleResidual(rng.Float64())
					free[best] += d
					if free[best] > end {
						end = free[best]
					}
				}
				total += end
			}
		}
		samples[t] = total
	}
	sort.Float64s(samples)
	return samples
}

// PredictPlanDistribution estimates the completion-time distribution of
// the plan by Monte Carlo simulation. The result includes the median and
// the 95th percentile, so the optimizer can promise deadlines at a
// confidence level rather than in expectation.
func (p *Predictor) PredictPlanDistribution(pl *plan.Plan, trials int, seed int64) Distribution {
	samples := p.planSamples(pl, trials, seed)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	d := Distribution{Trials: len(samples), Mean: sum / float64(len(samples))}
	d.P50 = quantileOf(samples, 0.50)
	d.P95 = quantileOf(samples, 0.95)
	return d
}

// PredictPlanQuantile returns the q-th (0..1) quantile of the Monte Carlo
// completion-time distribution, computed directly from the sorted trial
// samples: tail quantiles beyond 0.95 keep resolving (with enough trials)
// instead of clamping to P95.
func (p *Predictor) PredictPlanQuantile(pl *plan.Plan, trials int, seed int64, q float64) float64 {
	return quantileOf(p.planSamples(pl, trials, seed), q)
}
