package sim

import (
	"math/rand"
	"sort"

	"cumulon/internal/plan"
)

// Distribution summarizes a Monte Carlo completion-time estimate.
type Distribution struct {
	Mean   float64
	P50    float64
	P95    float64
	Trials int
}

// Quantile returns the q-th (0..1) quantile of the sampled times.
func (d Distribution) quantileOf(samples []float64, q float64) float64 {
	i := int(q * float64(len(samples)))
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return samples[i]
}

// PredictPlanDistribution estimates the completion-time distribution of
// the plan by Monte Carlo simulation: each trial schedules every task
// with a duration drawn as model-prediction times an empirical residual
// (the paper's simulation over measured task-time distributions). The
// result includes the median and the 95th percentile, so the optimizer
// can promise deadlines at a confidence level rather than in expectation.
func (p *Predictor) PredictPlanDistribution(pl *plan.Plan, trials int, seed int64) Distribution {
	if trials <= 0 {
		trials = 30
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, trials)
	slots := p.Cluster.TotalSlots()
	for t := 0; t < trials; t++ {
		total := 0.0
		for _, j := range pl.Jobs {
			total += p.JobStartup
			for _, phase := range plan.TaskProfiles(j) {
				free := make([]float64, slots)
				end := 0.0
				for _, w := range phase {
					best := 0
					for i := 1; i < slots; i++ {
						if free[i] < free[best] {
							best = i
						}
					}
					d := p.TaskSeconds(w) * p.Model.SampleResidual(rng.Float64())
					free[best] += d
					if free[best] > end {
						end = free[best]
					}
				}
				total += end
			}
		}
		samples[t] = total
	}
	sort.Float64s(samples)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	d := Distribution{Trials: trials, Mean: sum / float64(trials)}
	d.P50 = d.quantileOf(samples, 0.50)
	d.P95 = d.quantileOf(samples, 0.95)
	return d
}

// PredictPlanQuantile returns the q-th (0..1) quantile of the Monte Carlo
// completion-time distribution.
func (p *Predictor) PredictPlanQuantile(pl *plan.Plan, trials int, seed int64, q float64) float64 {
	d := p.PredictPlanDistribution(pl, trials, seed)
	// Re-derive from the recorded points: P50/P95 are the common asks;
	// other quantiles interpolate between mean-anchored points.
	switch {
	case q <= 0.5:
		return d.P50
	case q >= 0.95:
		return d.P95
	default:
		frac := (q - 0.5) / 0.45
		return d.P50 + frac*(d.P95-d.P50)
	}
}
