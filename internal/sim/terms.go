package sim

import "cumulon/internal/plan"

// Terms decomposes a plan-time prediction into the task model's additive
// terms, expressed as per-slot seconds: the summed task-seconds of each
// term divided evenly over the cluster's slots, plus the serial per-job
// startup. Total() is therefore a perfectly-packed lower bound on the
// predicted makespan — close to PredictPlan when phases schedule into
// full waves — and term *deltas* between two candidate deployments
// explain where their predicted-time difference comes from (the
// optimizer's EXPLAIN report prints exactly these).
//
// The categories mirror the obs read classes. RackSec is always zero
// under the current predictor: its locality model splits reads into
// node-local and everything-else, folding rack-local traffic into the
// remote term; the field keeps term vectors aligned with the engine's
// three-level locality accounting.
type Terms struct {
	// ComputeSec is the flop term (model BFlops · flops).
	ComputeSec float64 `json:"compute_sec"`
	// LocalSec is the disk term: node-local reads plus primary writes.
	LocalSec float64 `json:"local_sec"`
	// RackSec is rack-local read time (zero; see the type comment).
	RackSec float64 `json:"rack_sec"`
	// RemoteSec is the network term: remote reads plus replica writes.
	RemoteSec float64 `json:"remote_sec"`
	// StartupSec is fixed overhead: per-job launch (serial) plus the
	// per-task intercept spread over the slots.
	StartupSec float64 `json:"startup_sec"`
}

// Total returns the summed seconds across terms.
func (t Terms) Total() float64 {
	return t.ComputeSec + t.LocalSec + t.RackSec + t.RemoteSec + t.StartupSec
}

// Sub returns the element-wise difference t - o.
func (t Terms) Sub(o Terms) Terms {
	return Terms{
		ComputeSec: t.ComputeSec - o.ComputeSec,
		LocalSec:   t.LocalSec - o.LocalSec,
		RackSec:    t.RackSec - o.RackSec,
		RemoteSec:  t.RemoteSec - o.RemoteSec,
		StartupSec: t.StartupSec - o.StartupSec,
	}
}

// PlanTerms decomposes the predictor's estimate for the plan (under its
// current splits) into model terms. It applies the same replication
// geometry and locality split as TaskSeconds, so the decomposition is
// consistent with PredictPlan's totals.
func (p *Predictor) PlanTerms(pl *plan.Plan) Terms {
	slots := float64(p.Cluster.TotalSlots())
	repl := int64(p.replication())
	lf := p.localFraction()
	var t Terms
	for _, j := range pl.Jobs {
		t.StartupSec += p.JobStartup
		for _, phase := range plan.TaskProfiles(j) {
			for _, w := range phase {
				local := int64(float64(w.ReadBytes) * lf)
				remote := w.ReadBytes - local
				disk := local + w.WriteBytes
				net := remote + w.WriteBytes*(repl-1)
				b0, fl, dk, nt := p.Model.Terms(w.Flops, disk, net)
				t.StartupSec += b0 / slots
				t.ComputeSec += fl / slots
				t.LocalSec += dk / slots
				t.RemoteSec += nt / slots
			}
		}
	}
	return t
}
