package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store persists checkpoints and serves the newest valid one back.
// Implementations must tolerate torn writes from killed processes:
// Latest skips anything that fails validation rather than erroring the
// resume.
type Store interface {
	// Save durably records a checkpoint. Saving a later boundary of the
	// same (program, config) key supersedes earlier ones.
	Save(c *Checkpoint) error
	// Latest returns the newest valid checkpoint for the key, or
	// (nil, nil) when none exists.
	Latest(programHash, configHash string) (*Checkpoint, error)
}

// MemStore is an in-process Store: it backs tests and cumulond
// instances that do not need cross-process durability. Safe for
// concurrent use.
type MemStore struct {
	mu    sync.Mutex
	byKey map[string]*Checkpoint
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{byKey: map[string]*Checkpoint{}}
}

// Save validates and records the checkpoint, keeping only the newest
// boundary per key. Manifest and payloads are deep-copied so later
// caller mutations cannot corrupt the store.
func (s *MemStore) Save(c *Checkpoint) error {
	if err := validateForSave(c); err != nil {
		return err
	}
	cp := &Checkpoint{Manifest: &Manifest{}, Payloads: map[string][]byte{}}
	*cp.Manifest = *c.Manifest
	for _, d := range c.Manifest.PayloadDigests() {
		cp.Payloads[d] = append([]byte(nil), c.Payloads[d]...)
	}
	key := c.Manifest.Program + "/" + c.Manifest.Config
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev := s.byKey[key]; prev == nil || prev.Manifest.Iter < cp.Manifest.Iter {
		s.byKey[key] = cp
	}
	return nil
}

// Latest returns a copy of the newest checkpoint for the key, or nil.
func (s *MemStore) Latest(programHash, configHash string) (*Checkpoint, error) {
	s.mu.Lock()
	c := s.byKey[programHash+"/"+configHash]
	s.mu.Unlock()
	if c == nil {
		return nil, nil
	}
	cp := &Checkpoint{Manifest: &Manifest{}, Payloads: map[string][]byte{}}
	*cp.Manifest = *c.Manifest
	for d, b := range c.Payloads {
		cp.Payloads[d] = append([]byte(nil), b...)
	}
	return cp, nil
}

// DirStore is a filesystem Store rooted at a directory:
//
//	<root>/<prog8>-<cfg8>/iter-<n>/manifest.json
//	<root>/<prog8>-<cfg8>/iter-<n>/tiles/<digest>.bin
//
// Manifests are written to a temp file and renamed into place, so a
// process killed mid-checkpoint leaves at worst an orphan temp file or
// a tiles directory without a manifest — never a manifest that
// validates but references missing payloads (Latest re-verifies
// payload digests and skips such boundaries).
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if root == "" {
		return nil, fmt.Errorf("ckpt: empty store directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: create store: %w", err)
	}
	return &DirStore{root: root}, nil
}

// Root returns the store's root directory.
func (s *DirStore) Root() string { return s.root }

func (s *DirStore) keyDir(programHash, configHash string) string {
	return filepath.Join(s.root, programHash[:8]+"-"+configHash[:8])
}

// Save writes the checkpoint's payloads and then its manifest,
// manifest last so a boundary only becomes visible once complete.
func (s *DirStore) Save(c *Checkpoint) error {
	if err := validateForSave(c); err != nil {
		return err
	}
	m := c.Manifest
	dir := filepath.Join(s.keyDir(m.Program, m.Config), fmt.Sprintf("iter-%d", m.Iter))
	tiles := filepath.Join(dir, "tiles")
	if err := os.MkdirAll(tiles, 0o755); err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	for _, d := range m.PayloadDigests() {
		path := filepath.Join(tiles, d+".bin")
		if _, err := os.Stat(path); err == nil {
			continue // content-addressed: already present
		}
		if err := writeAtomic(path, c.Payloads[d]); err != nil {
			return err
		}
	}
	enc, err := Encode(m)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, "manifest.json"), enc)
}

// Latest scans the key's boundaries newest-first and returns the first
// one whose manifest decodes, validates, and has all payloads intact.
// Corrupted or incomplete boundaries are skipped, never resumed from.
func (s *DirStore) Latest(programHash, configHash string) (*Checkpoint, error) {
	dir := s.keyDir(programHash, configHash)
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: latest: %w", err)
	}
	var iters []int
	for _, e := range ents {
		if n, ok := strings.CutPrefix(e.Name(), "iter-"); ok && e.IsDir() {
			if i, err := strconv.Atoi(n); err == nil && i >= 1 {
				iters = append(iters, i)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))
	for _, it := range iters {
		c := s.load(filepath.Join(dir, fmt.Sprintf("iter-%d", it)), programHash, configHash)
		if c != nil {
			return c, nil
		}
	}
	return nil, nil
}

// load reads one boundary directory, returning nil when anything about
// it is invalid.
func (s *DirStore) load(dir, programHash, configHash string) *Checkpoint {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil
	}
	m, err := Decode(raw)
	if err != nil {
		return nil
	}
	if m.Program != programHash || m.Config != configHash {
		return nil
	}
	c := &Checkpoint{Manifest: m, Payloads: map[string][]byte{}}
	for _, d := range m.PayloadDigests() {
		data, err := os.ReadFile(filepath.Join(dir, "tiles", d+".bin"))
		if err != nil {
			return nil
		}
		c.Payloads[d] = data
	}
	if c.VerifyPayloads() != nil {
		return nil
	}
	return c
}

func validateForSave(c *Checkpoint) error {
	if c == nil || c.Manifest == nil {
		return fmt.Errorf("ckpt: save: nil checkpoint")
	}
	if err := c.Manifest.Validate(); err != nil {
		return err
	}
	return c.VerifyPayloads()
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("ckpt: write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: write: %w", err)
	}
	return nil
}
