package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testCheckpoint builds a valid sealed checkpoint for boundary iter,
// with one materialized tile payload per matrix.
func testCheckpoint(t *testing.T, iter int, names ...string) *Checkpoint {
	t.Helper()
	if len(names) == 0 {
		names = []string{"W"}
	}
	c := &Checkpoint{Payloads: map[string][]byte{}}
	m := &Manifest{
		FormatVersion:  Version,
		Program:        HashString("prog"),
		Config:         HashString("cfg"),
		Iter:           iter,
		Stmt:           iter * 2,
		BoundaryJob:    iter*3 + 1,
		ClockSec:       float64(iter) * 12.5,
		DeadNodes:      []int{1, 3},
		ChaosDelivered: 2,
	}
	for _, name := range names {
		payload := []byte(fmt.Sprintf("tile-%s-%d", name, iter))
		d := HashBytes(payload)
		c.Payloads[d] = payload
		m.Matrices = append(m.Matrices, Matrix{
			Name: name, Rows: 16, Cols: 8, TileSize: 8,
			Tiles: []Tile{{
				Path:     fmt.Sprintf("/matrix/%s/tile-0-0", name),
				Bytes:    int64(len(payload)),
				Replicas: [][]int{{0, 2}},
				Digest:   d,
			}},
		})
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	c.Manifest = m
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := testCheckpoint(t, 2, "W", "H")
	enc, err := Encode(c.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Digest != c.Manifest.Digest || m.Iter != 2 || len(m.Matrices) != 2 {
		t.Fatalf("round trip lost fields: %+v", m)
	}
	enc2, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encode is not byte-stable")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc, err := Encode(testCheckpoint(t, 1).Manifest)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         nil,
		"not json":      []byte("hello"),
		"truncated":     enc[:len(enc)/2],
		"trailing data": append(append([]byte(nil), enc...), []byte("{}")...),
		"unknown field": []byte(strings.Replace(string(enc), `"version"`, `"evil":1,"version"`, 1)),
		"field flipped": []byte(strings.Replace(string(enc), `"iter":1`, `"iter":2`, 1)),
		"digest flipped": []byte(strings.Replace(string(enc),
			`"digest":"`+enc2digest(t, enc), `"digest":"`+flipHex(enc2digest(t, enc)), 1)),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: corrupted manifest decoded without error", name)
		}
	}
	// A single flipped byte anywhere in the body must either be caught
	// (by the JSON layer, a structural check, or the sealed digest) or
	// decode to the exact same state — encoding/json matches keys
	// case-insensitively, so a flip inside a key name can yield an
	// equivalent document. What can never happen is resuming from
	// altered state.
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x20
		if bytes.Equal(mut, enc) {
			continue
		}
		m, err := Decode(mut)
		if err != nil {
			continue
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("bit flip at offset %d decoded to different state: %s", i, mut)
		}
	}
}

func enc2digest(t *testing.T, enc []byte) string {
	t.Helper()
	m, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	return m.Digest
}

func flipHex(d string) string {
	if d[0] == '0' {
		return "1" + d[1:]
	}
	return "0" + d[1:]
}

func TestValidateRejectsBadManifests(t *testing.T) {
	breakers := map[string]func(*Manifest){
		"wrong version":      func(m *Manifest) { m.FormatVersion = Version + 1 },
		"bad program hash":   func(m *Manifest) { m.Program = "xyz" },
		"bad config hash":    func(m *Manifest) { m.Config = m.Config[:10] },
		"iter zero":          func(m *Manifest) { m.Iter = 0 },
		"stmt zero":          func(m *Manifest) { m.Stmt = 0 },
		"negative job":       func(m *Manifest) { m.BoundaryJob = -1 },
		"negative clock":     func(m *Manifest) { m.ClockSec = -1 },
		"negative cursor":    func(m *Manifest) { m.ChaosDelivered = -1 },
		"dead unsorted":      func(m *Manifest) { m.DeadNodes = []int{3, 1} },
		"dead duplicate":     func(m *Manifest) { m.DeadNodes = []int{1, 1} },
		"dead negative":      func(m *Manifest) { m.DeadNodes = []int{-1} },
		"no matrices":        func(m *Manifest) { m.Matrices = nil },
		"empty matrix name":  func(m *Manifest) { m.Matrices[0].Name = "" },
		"duplicate matrix":   func(m *Manifest) { m.Matrices = append(m.Matrices, m.Matrices[0]) },
		"bad shape":          func(m *Manifest) { m.Matrices[0].Rows = 0 },
		"no tiles":           func(m *Manifest) { m.Matrices[0].Tiles = nil },
		"empty tile path":    func(m *Manifest) { m.Matrices[0].Tiles[0].Path = "" },
		"negative tile size": func(m *Manifest) { m.Matrices[0].Tiles[0].Bytes = -1 },
		"no replicas":        func(m *Manifest) { m.Matrices[0].Tiles[0].Replicas = nil },
		"empty block":        func(m *Manifest) { m.Matrices[0].Tiles[0].Replicas = [][]int{{}} },
		"negative replica":   func(m *Manifest) { m.Matrices[0].Tiles[0].Replicas = [][]int{{-1}} },
		"bad tile digest":    func(m *Manifest) { m.Matrices[0].Tiles[0].Digest = "nothex" },
		"stale digest":       func(m *Manifest) { m.ClockSec++ }, // breaks the seal
	}
	for name, mutate := range breakers {
		m := testCheckpoint(t, 1).Manifest
		mutate(m)
		if name != "stale digest" {
			// Re-seal so the failure is the structural invariant itself,
			// not the digest masking it.
			if err := m.Seal(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validated without error", name)
		}
	}
}

func TestVerifyPayloads(t *testing.T) {
	c := testCheckpoint(t, 1)
	if err := c.VerifyPayloads(); err != nil {
		t.Fatal(err)
	}
	d := c.Manifest.PayloadDigests()[0]
	c.Payloads[d] = append(c.Payloads[d], 'x')
	if err := c.VerifyPayloads(); err == nil {
		t.Fatal("tampered payload verified")
	}
	delete(c.Payloads, d)
	if err := c.VerifyPayloads(); err == nil {
		t.Fatal("missing payload verified")
	}
}

func TestMemStoreSupersedesAndIsolates(t *testing.T) {
	s := NewMemStore()
	prog, cfg := HashString("prog"), HashString("cfg")
	if c, err := s.Latest(prog, cfg); err != nil || c != nil {
		t.Fatalf("empty store: got %v, %v", c, err)
	}
	for _, iter := range []int{1, 3, 2} { // out of order: 3 must win
		if err := s.Save(testCheckpoint(t, iter)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Latest(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Iter != 3 {
		t.Fatalf("latest iter = %d, want 3", got.Manifest.Iter)
	}
	// Mutating the returned copy must not corrupt the store.
	got.Manifest.Iter = 99
	for d := range got.Payloads {
		got.Payloads[d][0] ^= 0xff
	}
	again, err := s.Latest(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Manifest.Iter != 3 {
		t.Fatal("store state leaked through Latest copy")
	}
	if err := again.VerifyPayloads(); err != nil {
		t.Fatalf("store payloads corrupted through Latest copy: %v", err)
	}
	// Unsealed manifests are rejected at Save.
	bad := testCheckpoint(t, 4)
	bad.Manifest.ClockSec++
	if err := s.Save(bad); err == nil {
		t.Fatal("unsealed manifest saved")
	}
}

func TestDirStorePersistsAndSkipsCorruption(t *testing.T) {
	root := t.TempDir()
	s, err := NewDirStore(filepath.Join(root, "state"))
	if err != nil {
		t.Fatal(err)
	}
	prog, cfg := HashString("prog"), HashString("cfg")
	if c, err := s.Latest(prog, cfg); err != nil || c != nil {
		t.Fatalf("empty store: got %v, %v", c, err)
	}
	for _, iter := range []int{1, 2} {
		if err := s.Save(testCheckpoint(t, iter, "W", "H")); err != nil {
			t.Fatal(err)
		}
	}
	// A reopened store (fresh process) sees the newest boundary.
	s2, err := NewDirStore(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Latest(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Manifest.Iter != 2 {
		t.Fatalf("latest = %+v, want iter 2", got)
	}
	if err := got.VerifyPayloads(); err != nil {
		t.Fatal(err)
	}
	// Truncate iter-2's manifest (a torn write): Latest must fall back
	// to iter-1, never resume from the corrupted boundary.
	manPath := filepath.Join(s.Root(), prog[:8]+"-"+cfg[:8], "iter-2", "manifest.json")
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = s.Latest(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Manifest.Iter != 1 {
		t.Fatalf("after corruption latest = %+v, want iter 1", got)
	}
	// Restore the manifest but delete iter-2's payloads: a manifest that
	// validates yet references missing tiles must also be skipped.
	if err := os.WriteFile(manPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join(s.Root(), prog[:8]+"-"+cfg[:8], "iter-2", "tiles"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		os.Remove(filepath.Join(s.Root(), prog[:8]+"-"+cfg[:8], "iter-2", "tiles", e.Name()))
	}
	got, err = s.Latest(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Manifest.Iter != 1 {
		t.Fatalf("after payload loss latest = %+v, want iter 1", got)
	}
	// A different key sees nothing.
	if c, err := s.Latest(HashString("other"), cfg); err != nil || c != nil {
		t.Fatalf("foreign key: got %v, %v", c, err)
	}
}
