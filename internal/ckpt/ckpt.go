// Package ckpt implements program-level checkpoint/restore for the
// execution engine: the durable manifest format that captures the state
// of an iterative program at an iteration boundary, and the stores that
// persist manifests across process lifetimes.
//
// A checkpoint is taken at an iteration boundary (package lang's
// `checkpoint` markers, projected onto job IDs by the planner): every
// job up to the boundary has completed and the only state a resuming
// run needs is the set of materialized matrices those jobs produced,
// plus the small amount of engine state that makes the resumed tail
// bit-identical to an uninterrupted run — the virtual clock, the set of
// dead datanodes, the chaos-delivery cursor, and the exact block
// placement of every tile. The engine reseeds its noise and placement
// random streams at every boundary (from the run seed and the boundary
// position), so the manifest never needs to capture generator state.
//
// Manifests are versioned, digest-carrying JSON: the Digest field is
// the SHA-256 of the manifest encoded with Digest empty, so any
// corruption — truncation, bit flips, a partial write — is detected at
// decode time and the manifest is rejected rather than resumed from.
// Tile payloads are content-addressed by their own SHA-256, verified on
// load.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Version is the current manifest format version. Decoders reject
// anything else: resuming from a half-understood manifest is worse
// than restarting.
const Version = 1

// Tile records one stored tile file of a checkpointed matrix: where
// its block replicas lived, how big it was, and (for materialized
// runs) the content digest keying its payload in the Checkpoint.
type Tile struct {
	// Path is the DFS path of the tile file.
	Path string `json:"path"`
	// Bytes is the file size.
	Bytes int64 `json:"bytes"`
	// Replicas lists the datanode ids holding each block, in block
	// order, exactly as the checkpointing run had them placed
	// (including any post-failure re-replication).
	Replicas [][]int `json:"replicas"`
	// Digest is the hex SHA-256 of the tile payload; empty for virtual
	// tiles, which have placement and size but no content.
	Digest string `json:"digest,omitempty"`
}

// Matrix is one checkpointed matrix: a job output that existed on the
// DFS at the boundary.
type Matrix struct {
	Name     string  `json:"name"`
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	TileSize int     `json:"tile_size"`
	Sparse   bool    `json:"sparse,omitempty"`
	Density  float64 `json:"density,omitempty"`
	Tiles    []Tile  `json:"tiles"`
}

// Manifest is the durable record of one checkpoint: program hash ×
// config hash × iteration boundary → the set of materialized matrices
// plus the engine state needed for bit-identical resume.
type Manifest struct {
	// FormatVersion must equal Version.
	FormatVersion int `json:"version"`
	// Program is the hex SHA-256 of the (rewritten) program source; a
	// manifest only resumes the exact program that wrote it.
	Program string `json:"program"`
	// Config is the hex SHA-256 of the execution configuration
	// (cluster, seeds, fault schedule, checkpoint cadence, ...); any
	// difference would change the timeline, so resume refuses it.
	Config string `json:"config"`
	// Iter is the 1-based ordinal of the boundary among the program's
	// checkpointed boundaries.
	Iter int `json:"iter"`
	// Stmt counts completed program statements at the boundary.
	Stmt int `json:"stmt"`
	// BoundaryJob is the highest completed job ID.
	BoundaryJob int `json:"boundary_job"`
	// ClockSec is the virtual clock after the checkpoint write; the
	// resumed run restarts its clock here.
	ClockSec float64 `json:"clock_sec"`
	// ChaosDelivered is the fault injector's delivered-crash cursor at
	// the boundary; the resumed run skips that many crashes (their
	// effects are already encoded in DeadNodes and Replicas).
	ChaosDelivered int `json:"chaos_delivered,omitempty"`
	// DeadNodes lists datanodes dead at the boundary, ascending.
	DeadNodes []int `json:"dead_nodes,omitempty"`
	// Matrices are the checkpointed matrices, in job order.
	Matrices []Matrix `json:"matrices"`
	// Digest is the hex SHA-256 of this manifest encoded with Digest
	// empty; it seals everything above.
	Digest string `json:"digest"`
}

// Checkpoint pairs a manifest with the tile payloads it references,
// keyed by their hex SHA-256 content digest. Virtual runs carry no
// payloads.
type Checkpoint struct {
	Manifest *Manifest
	Payloads map[string][]byte
}

// HashBytes returns the hex SHA-256 of data.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// HashString returns the hex SHA-256 of s; callers use it for program
// and config hashes.
func HashString(s string) string { return HashBytes([]byte(s)) }

// Seal computes and embeds the manifest's digest over every other
// field; call it once all fields are final, before handing the
// manifest to a Store.
func (m *Manifest) Seal() error {
	m.Digest = ""
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("ckpt: seal: %w", err)
	}
	m.Digest = HashBytes(body)
	return nil
}

// Encode serializes the manifest, computing and embedding its digest.
// The receiver is not mutated.
func Encode(m *Manifest) ([]byte, error) {
	sealed := *m
	sealed.Digest = ""
	body, err := json.Marshal(&sealed)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	sealed.Digest = HashBytes(body)
	out, err := json.Marshal(&sealed)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	return out, nil
}

// Decode parses and fully validates a manifest: JSON shape (unknown
// fields rejected), version, structural invariants, and the embedded
// digest. Anything invalid returns an error — a corrupted or truncated
// manifest must never be resumed from.
func Decode(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("ckpt: decode: %w", err)
	}
	// Trailing garbage after the JSON value is corruption, not padding.
	if dec.More() {
		return nil, fmt.Errorf("ckpt: decode: trailing data after manifest")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the manifest's structural invariants and its
// embedded digest.
func (m *Manifest) Validate() error {
	if m.FormatVersion != Version {
		return fmt.Errorf("ckpt: unsupported manifest version %d (want %d)", m.FormatVersion, Version)
	}
	if !isHexDigest(m.Program) {
		return fmt.Errorf("ckpt: bad program hash %q", m.Program)
	}
	if !isHexDigest(m.Config) {
		return fmt.Errorf("ckpt: bad config hash %q", m.Config)
	}
	if m.Iter < 1 {
		return fmt.Errorf("ckpt: iteration ordinal %d < 1", m.Iter)
	}
	if m.Stmt < 1 {
		return fmt.Errorf("ckpt: boundary statement %d < 1", m.Stmt)
	}
	if m.BoundaryJob < 0 {
		return fmt.Errorf("ckpt: negative boundary job %d", m.BoundaryJob)
	}
	if m.ClockSec < 0 || math.IsNaN(m.ClockSec) || math.IsInf(m.ClockSec, 0) {
		return fmt.Errorf("ckpt: bad clock %v", m.ClockSec)
	}
	if m.ChaosDelivered < 0 {
		return fmt.Errorf("ckpt: negative chaos cursor %d", m.ChaosDelivered)
	}
	for i, n := range m.DeadNodes {
		if n < 0 {
			return fmt.Errorf("ckpt: negative dead node %d", n)
		}
		if i > 0 && m.DeadNodes[i-1] >= n {
			return fmt.Errorf("ckpt: dead nodes not strictly ascending at %d", n)
		}
	}
	if len(m.Matrices) == 0 {
		return fmt.Errorf("ckpt: manifest has no matrices")
	}
	seenMatrix := map[string]bool{}
	seenPath := map[string]bool{}
	for _, mx := range m.Matrices {
		if mx.Name == "" {
			return fmt.Errorf("ckpt: matrix with empty name")
		}
		if seenMatrix[mx.Name] {
			return fmt.Errorf("ckpt: duplicate matrix %s", mx.Name)
		}
		seenMatrix[mx.Name] = true
		if mx.Rows <= 0 || mx.Cols <= 0 || mx.TileSize <= 0 {
			return fmt.Errorf("ckpt: matrix %s has bad shape %dx%d tile %d", mx.Name, mx.Rows, mx.Cols, mx.TileSize)
		}
		if len(mx.Tiles) == 0 {
			return fmt.Errorf("ckpt: matrix %s has no tiles", mx.Name)
		}
		for _, t := range mx.Tiles {
			if t.Path == "" {
				return fmt.Errorf("ckpt: matrix %s has a tile with no path", mx.Name)
			}
			if seenPath[t.Path] {
				return fmt.Errorf("ckpt: duplicate tile path %s", t.Path)
			}
			seenPath[t.Path] = true
			if t.Bytes < 0 {
				return fmt.Errorf("ckpt: tile %s has negative size", t.Path)
			}
			if len(t.Replicas) == 0 {
				return fmt.Errorf("ckpt: tile %s has no block replicas", t.Path)
			}
			for _, blk := range t.Replicas {
				if len(blk) == 0 {
					return fmt.Errorf("ckpt: tile %s has a block with no replicas", t.Path)
				}
				for _, n := range blk {
					if n < 0 {
						return fmt.Errorf("ckpt: tile %s replica on negative node %d", t.Path, n)
					}
				}
			}
			if t.Digest != "" && !isHexDigest(t.Digest) {
				return fmt.Errorf("ckpt: tile %s has bad digest %q", t.Path, t.Digest)
			}
		}
	}
	sealed := *m
	sealed.Digest = ""
	body, err := json.Marshal(&sealed)
	if err != nil {
		return fmt.Errorf("ckpt: validate: %w", err)
	}
	if want := HashBytes(body); m.Digest != want {
		return fmt.Errorf("ckpt: manifest digest mismatch (corrupted or tampered)")
	}
	return nil
}

// PayloadDigests returns the distinct non-empty tile digests the
// manifest references, sorted.
func (m *Manifest) PayloadDigests() []string {
	set := map[string]bool{}
	for _, mx := range m.Matrices {
		for _, t := range mx.Tiles {
			if t.Digest != "" {
				set[t.Digest] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// VerifyPayloads checks that every payload the manifest references is
// present and matches its content digest.
func (c *Checkpoint) VerifyPayloads() error {
	for _, d := range c.Manifest.PayloadDigests() {
		data, ok := c.Payloads[d]
		if !ok {
			return fmt.Errorf("ckpt: missing payload %s", d)
		}
		if HashBytes(data) != d {
			return fmt.Errorf("ckpt: payload %s fails its digest", d)
		}
	}
	return nil
}

func isHexDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
