package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointManifest is the manifest decoder's safety contract
// under arbitrary bytes: Decode either rejects the input or returns a
// manifest that (a) passes Validate — so a corrupted or truncated
// manifest can never flow into resume — and (b) survives a
// byte-stable re-encode/re-decode round trip.
func FuzzCheckpointManifest(f *testing.F) {
	// Seed with a real sealed manifest and characteristic corruptions of
	// it; the committed corpus under testdata/fuzz mirrors these.
	m := &Manifest{
		FormatVersion: Version,
		Program:       HashString("prog"),
		Config:        HashString("cfg"),
		Iter:          2,
		Stmt:          4,
		BoundaryJob:   7,
		ClockSec:      123.456,
		DeadNodes:     []int{1, 3},
		Matrices: []Matrix{{
			Name: "W", Rows: 16, Cols: 8, TileSize: 8,
			Tiles: []Tile{{
				Path:     "/matrix/W/tile-0-0",
				Bytes:    512,
				Replicas: [][]int{{0, 2}},
				Digest:   HashBytes([]byte("tile")),
			}},
		}},
	}
	valid, err := Encode(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), "garbage"...))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dm, err := Decode(data)
		if err != nil {
			return // rejected: fine, as long as we did not crash
		}
		if err := dm.Validate(); err != nil {
			t.Fatalf("Decode accepted a manifest Validate rejects: %v", err)
		}
		enc, err := Encode(dm)
		if err != nil {
			t.Fatalf("re-encode of decoded manifest failed: %v", err)
		}
		dm2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v\n%s", err, enc)
		}
		if dm2.Digest != dm.Digest {
			t.Fatalf("digest changed across round trip: %s vs %s", dm.Digest, dm2.Digest)
		}
		enc2, err := Encode(dm2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encode not byte-stable:\n%s\n%s", enc, enc2)
		}
	})
}
