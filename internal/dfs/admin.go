package dfs

import (
	"fmt"
	"sort"
)

// This file holds the administrative operations of the file system: usage
// reporting, replica rebalancing after skewed ingest, and graceful
// datanode decommissioning — the HDFS operator toolkit a long-lived
// cluster depends on.

// NodeUsage reports the stored bytes (all replicas) per node.
func (fs *FS) NodeUsage() []int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.nodeUsageLocked()
}

func (fs *FS) nodeUsageLocked() []int64 {
	usage := make([]int64, fs.cfg.Nodes)
	for _, f := range fs.files {
		for _, b := range f.blocks {
			for _, r := range b.replicas {
				usage[r] += b.size
			}
		}
	}
	return usage
}

// Balance moves block replicas from overloaded to underloaded live nodes
// until every node's stored bytes are within `slack` (e.g. 0.1 = 10%) of
// the mean, or no further move helps. Moves are network transfers and are
// accounted as replication traffic. It returns the bytes moved.
func (fs *FS) Balance(slack float64) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if slack < 0 {
		slack = 0
	}
	usage := fs.nodeUsageLocked()
	live := fs.liveNodesLocked()
	if len(live) < 2 {
		return 0
	}
	var total int64
	for _, n := range live {
		total += usage[n]
	}
	mean := float64(total) / float64(len(live))
	upper := mean * (1 + slack)

	var moved int64
	// Iterate files deterministically.
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		for _, b := range fs.files[p].blocks {
			// Find a replica on an overloaded node and a live underloaded
			// node that does not already hold the block.
			for ri, r := range b.replicas {
				if fs.dead[r] || float64(usage[r]) <= upper {
					continue
				}
				dst := -1
				for _, n := range live {
					// Fill destinations only up to the mean so moves always
					// shrink the spread.
					if float64(usage[n])+float64(b.size) > mean {
						continue
					}
					has := false
					for _, rr := range b.replicas {
						if rr == n {
							has = true
							break
						}
					}
					if !has && (dst < 0 || usage[n] < usage[dst]) {
						dst = n
					}
				}
				if dst < 0 {
					continue
				}
				b.replicas[ri] = dst
				usage[r] -= b.size
				usage[dst] += b.size
				moved += b.size
				fs.stats[dst].ReplicationBytes += b.size
				fs.total.ReplicationBytes += b.size
				break
			}
		}
	}
	return moved
}

// Decommission gracefully retires a datanode: every replica it holds is
// first copied to another live node (accounted as replication traffic),
// then the node is marked dead. Unlike KillNode, no block ever drops
// below its replica count — safe even at replication factor 1.
func (fs *FS) Decommission(node int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if node < 0 || node >= fs.cfg.Nodes {
		return fmt.Errorf("dfs: no such node %d", node)
	}
	if fs.dead[node] {
		return fmt.Errorf("dfs: node %d is already dead", node)
	}
	targets := make([]int, 0, fs.cfg.Nodes)
	for _, n := range fs.liveNodesLocked() {
		if n != node {
			targets = append(targets, n)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("dfs: cannot decommission the last live node")
	}
	usage := fs.nodeUsageLocked()
	for _, f := range fs.files {
		for _, b := range f.blocks {
			for ri, r := range b.replicas {
				if r != node {
					continue
				}
				// Least-loaded target not already holding the block.
				dst := -1
				for _, n := range targets {
					has := false
					for _, rr := range b.replicas {
						if rr == n {
							has = true
							break
						}
					}
					if !has && (dst < 0 || usage[n] < usage[dst]) {
						dst = n
					}
				}
				if dst < 0 {
					// Every other node already has the block: dropping this
					// replica still leaves the block fully available.
					b.replicas = append(b.replicas[:ri], b.replicas[ri+1:]...)
					break
				}
				b.replicas[ri] = dst
				usage[dst] += b.size
				fs.stats[dst].ReplicationBytes += b.size
				fs.total.ReplicationBytes += b.size
				break
			}
		}
	}
	fs.dead[node] = true
	return nil
}
