package dfs

import (
	"fmt"
	"testing"
)

// skewedFS builds a cluster where one node wrote everything locally.
func skewedFS(t *testing.T, nodes int) *FS {
	t.Helper()
	fs := New(Config{Nodes: nodes, Replication: 1, Seed: 1})
	for i := 0; i < 40; i++ {
		if err := fs.WriteVirtual(fmt.Sprintf("/s/%d", i), 1000, 0); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func imbalance(usage []int64) float64 {
	var max, total int64
	n := 0
	for _, u := range usage {
		if u > max {
			max = u
		}
		total += u
		n++
	}
	if total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(n))
}

func TestNodeUsage(t *testing.T) {
	fs := skewedFS(t, 4)
	usage := fs.NodeUsage()
	if usage[0] != 40000 {
		t.Fatalf("writer node usage: %v", usage)
	}
	if usage[1]+usage[2]+usage[3] != 0 {
		t.Fatalf("other nodes should be empty: %v", usage)
	}
}

func TestBalanceEvensLoad(t *testing.T) {
	fs := skewedFS(t, 4)
	before := imbalance(fs.NodeUsage())
	moved := fs.Balance(0.1)
	after := imbalance(fs.NodeUsage())
	if moved == 0 {
		t.Fatal("balance moved nothing on a fully skewed cluster")
	}
	if after >= before {
		t.Fatalf("imbalance did not improve: %.2f -> %.2f", before, after)
	}
	if after > 1.2 {
		t.Fatalf("imbalance still %.2f after balancing", after)
	}
	// All data still readable.
	for i := 0; i < 40; i++ {
		if _, err := fs.ReadAccount(fmt.Sprintf("/s/%d", i), 2); err != nil {
			t.Fatalf("file %d unreadable after balance: %v", i, err)
		}
	}
	// Moves were accounted as replication traffic.
	if fs.Stats(-1).ReplicationBytes == 0 {
		t.Fatal("balance traffic not accounted")
	}
}

func TestBalanceIdempotent(t *testing.T) {
	fs := skewedFS(t, 4)
	fs.Balance(0.1)
	if moved := fs.Balance(0.1); moved != 0 {
		t.Fatalf("second balance moved %d bytes", moved)
	}
}

func TestDecommissionKeepsDataAvailable(t *testing.T) {
	// Replication 1: KillNode would lose data, Decommission must not.
	fs := New(Config{Nodes: 3, Replication: 1, Seed: 2})
	for i := 0; i < 20; i++ {
		if err := fs.WriteVirtual(fmt.Sprintf("/d/%d", i), 500, i%3); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Decommission(1); err != nil {
		t.Fatal(err)
	}
	if fs.NodeAlive(1) {
		t.Fatal("node still alive after decommission")
	}
	for i := 0; i < 20; i++ {
		if _, err := fs.ReadAccount(fmt.Sprintf("/d/%d", i), 0); err != nil {
			t.Fatalf("file %d lost after decommission: %v", i, err)
		}
	}
	if usage := fs.NodeUsage(); usage[1] != 0 {
		t.Fatalf("decommissioned node still holds %d bytes", usage[1])
	}
}

func TestDecommissionErrors(t *testing.T) {
	fs := New(Config{Nodes: 2, Replication: 1, Seed: 1})
	if err := fs.Decommission(7); err == nil {
		t.Fatal("want error for unknown node")
	}
	if err := fs.Decommission(0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Decommission(0); err == nil {
		t.Fatal("want error for already-dead node")
	}
	if err := fs.Decommission(1); err == nil {
		t.Fatal("want error for last live node")
	}
}

func TestDecommissionFullyReplicatedBlocks(t *testing.T) {
	// With replication == nodes, every node holds every block: the
	// decommissioned node's replicas can simply be dropped.
	fs := New(Config{Nodes: 3, Replication: 3, Seed: 3})
	if err := fs.WriteVirtual("/x", 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Decommission(2); err != nil {
		t.Fatal(err)
	}
	nodes, err := fs.ReplicaNodes("/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("replicas after decommission: %v", nodes)
	}
}
