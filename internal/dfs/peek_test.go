package dfs

import (
	"bytes"
	"errors"
	"testing"
)

// TestPeekReturnsContentWithoutAccounting: Peek is the compute layer's
// non-accounting read — it must return the full content (across blocks)
// while leaving every IO counter untouched.
func TestPeekReturnsContentWithoutAccounting(t *testing.T) {
	fs := New(Config{Nodes: 4, Replication: 2, BlockSize: 8, Seed: 1})
	data := []byte("spans multiple dfs blocks for sure")
	if err := fs.Write("/a", data, 0); err != nil {
		t.Fatal(err)
	}
	fs.ResetStats()
	got, err := fs.Peek("/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("peek mismatch: %q", got)
	}
	total := fs.Stats(-1)
	if total.LocalReadBytes != 0 || total.RackLocalReadBytes != 0 || total.RemoteReadBytes != 0 {
		t.Fatalf("peek accounted reads: %+v", total)
	}
}

func TestPeekErrors(t *testing.T) {
	fs := New(Config{Nodes: 3, Replication: 1, Seed: 1})
	if _, err := fs.Peek("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("peek of missing file: %v", err)
	}
	if err := fs.WriteVirtual("/v", 1000, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Peek("/v"); !errors.Is(err, ErrVirtual) {
		t.Fatalf("peek of virtual file: %v", err)
	}
	if err := fs.Write("/a", []byte("x"), 2); err != nil {
		t.Fatal(err)
	}
	nodes, err := fs.ReplicaNodes("/a")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		fs.KillNode(n)
	}
	if _, err := fs.Peek("/a"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("peek with all replicas dead: %v", err)
	}
}
