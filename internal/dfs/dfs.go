// Package dfs implements a simulated distributed file system in the spirit
// of HDFS, the storage substrate Cumulon runs on. It reproduces the
// properties the Cumulon engine and optimizer depend on:
//
//   - files split into blocks, each block replicated on several datanodes;
//   - write-local-first placement, with remaining replicas spread across
//     the cluster;
//   - locality-aware reads: a reader on a node holding a replica reads
//     locally, otherwise remotely (the distinction drives both scheduling
//     and the I/O cost model);
//   - byte-level accounting of local vs. remote traffic per node;
//   - datanode failure with re-replication, so that the engines' retry
//     paths can be exercised.
//
// Data is held in memory: the simulation is about placement, locality and
// accounting, not about durability of real disks.
package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Common errors returned by the file system.
var (
	ErrNotFound    = errors.New("dfs: file not found")
	ErrExists      = errors.New("dfs: file already exists")
	ErrUnavailable = errors.New("dfs: all replicas unavailable")
	ErrDeadNode    = errors.New("dfs: node is dead")
	ErrVirtual     = errors.New("dfs: virtual file has no content")
)

// Config controls file system geometry.
type Config struct {
	Nodes       int   // number of datanodes
	Replication int   // replicas per block (HDFS default 3)
	BlockSize   int64 // block size in bytes (HDFS-like, default 64 MiB)
	Seed        int64 // seed for placement randomness
	// RackSize groups nodes into racks of this many nodes (node n lives
	// in rack n/RackSize). Zero means a single rack. With racks
	// configured, replica placement follows the HDFS policy — first
	// replica on the writer, second on a different rack, third on the
	// second's rack — and reads distinguish node-local, rack-local and
	// cross-rack traffic.
	RackSize int
}

// DefaultConfig mirrors a small 2013-era Hadoop deployment.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, Replication: 3, BlockSize: 64 << 20, Seed: 1}
}

type block struct {
	data     []byte // nil for virtual blocks
	size     int64
	replicas []int // datanode ids holding this block
}

type file struct {
	blocks  []*block
	size    int64
	virtual bool
}

// IOStats aggregates byte counters; one instance exists per node plus one
// cluster-wide total. The three read classes are disjoint: node-local,
// rack-local (non-local, same rack) and remote (cross-rack).
type IOStats struct {
	LocalReadBytes     int64
	RackLocalReadBytes int64
	RemoteReadBytes    int64
	WrittenBytes       int64 // bytes of primary (first-replica) writes
	ReplicationBytes   int64 // bytes of extra replica traffic
}

// FS is the simulated distributed file system. All methods are safe for
// concurrent use.
type FS struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	files map[string]*file
	dead  map[int]bool
	stats []IOStats // per node
	total IOStats
}

// New creates a file system with the given configuration. Replication is
// clamped to the node count.
func New(cfg Config) *FS {
	if cfg.Nodes <= 0 {
		panic("dfs: need at least one node")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Replication > cfg.Nodes {
		cfg.Replication = cfg.Nodes
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 64 << 20
	}
	return &FS{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		files: make(map[string]*file),
		dead:  make(map[int]bool),
		stats: make([]IOStats, cfg.Nodes),
	}
}

// Nodes returns the number of datanodes (live or dead).
func (fs *FS) Nodes() int { return fs.cfg.Nodes }

// RackOf returns the rack id of a node (0 for single-rack clusters and
// external clients).
func (fs *FS) RackOf(node int) int {
	if fs.cfg.RackSize <= 0 || node < 0 {
		return 0
	}
	return node / fs.cfg.RackSize
}

// Racks returns the number of racks in the cluster.
func (fs *FS) Racks() int {
	if fs.cfg.RackSize <= 0 {
		return 1
	}
	return (fs.cfg.Nodes + fs.cfg.RackSize - 1) / fs.cfg.RackSize
}

// Replication returns the configured replication factor.
func (fs *FS) Replication() int { return fs.cfg.Replication }

// Write stores data under path, placing the first replica on writerNode
// (HDFS write-local-first) and the remaining replicas on random distinct
// live nodes. writerNode < 0 means an external client: all replicas are
// placed randomly.
func (fs *FS) Write(path string, data []byte, writerNode int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	if writerNode >= 0 && fs.dead[writerNode] {
		return fmt.Errorf("%w: %d", ErrDeadNode, writerNode)
	}
	f := &file{size: int64(len(data))}
	for off := int64(0); off == 0 || off < int64(len(data)); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunk := append([]byte(nil), data[off:end]...)
		b := &block{data: chunk, size: int64(len(chunk)), replicas: fs.placeReplicas(writerNode)}
		f.blocks = append(f.blocks, b)
		fs.accountWrite(b)
	}
	fs.files[path] = f
	return nil
}

// WriteVirtual stores a metadata-only file of the given size: replica
// placement, locality, accounting and failure behaviour are identical to a
// real file, but no payload is kept. Paper-scale experiments use virtual
// matrices so that a 100k x 100k product can be *scheduled and timed*
// exactly without computing 10^15 flops for real; correctness of the same
// code paths is established separately on materialized data.
func (fs *FS) WriteVirtual(path string, size int64, writerNode int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	if writerNode >= 0 && fs.dead[writerNode] {
		return fmt.Errorf("%w: %d", ErrDeadNode, writerNode)
	}
	if size < 0 {
		return fmt.Errorf("dfs: negative size %d for %s", size, path)
	}
	f := &file{size: size, virtual: true}
	for off := int64(0); off == 0 || off < size; off += fs.cfg.BlockSize {
		bs := fs.cfg.BlockSize
		if off+bs > size {
			bs = size - off
		}
		b := &block{size: bs, replicas: fs.placeReplicas(writerNode)}
		f.blocks = append(f.blocks, b)
		fs.accountWrite(b)
	}
	fs.files[path] = f
	return nil
}

func (fs *FS) accountWrite(b *block) {
	primary := b.replicas[0]
	fs.stats[primary].WrittenBytes += b.size
	fs.total.WrittenBytes += b.size
	for _, r := range b.replicas[1:] {
		fs.stats[r].ReplicationBytes += b.size
		fs.total.ReplicationBytes += b.size
	}
}

// ReadSplit classifies the bytes of a read by distance from the reader:
// served from the reader's own node, from another node in the reader's
// rack, or across racks. The three classes are disjoint; in single-rack
// clusters every non-local byte is Remote.
type ReadSplit struct {
	Local     int64
	RackLocal int64
	Remote    int64
}

// Total returns the total bytes of the read.
func (r ReadSplit) Total() int64 { return r.Local + r.RackLocal + r.Remote }

// classify determines the read class of a block for readerNode and
// accounts it; caller holds the lock.
func (fs *FS) classify(b *block, live []int, readerNode int, sp *ReadSplit) {
	for _, r := range live {
		if r == readerNode {
			sp.Local += b.size
			fs.stats[readerNode].LocalReadBytes += b.size
			fs.total.LocalReadBytes += b.size
			return
		}
	}
	if fs.cfg.RackSize > 0 && readerNode >= 0 {
		rack := fs.RackOf(readerNode)
		for _, r := range live {
			if fs.RackOf(r) == rack {
				sp.RackLocal += b.size
				fs.stats[readerNode].RackLocalReadBytes += b.size
				fs.total.RackLocalReadBytes += b.size
				return
			}
		}
	}
	sp.Remote += b.size
	if readerNode >= 0 {
		fs.stats[readerNode].RemoteReadBytes += b.size
	}
	fs.total.RemoteReadBytes += b.size
}

// ReadAccount performs the placement, locality and byte accounting of a
// read without returning content, and reports how the bytes split by
// distance from readerNode. It works for both real and virtual files and
// is the read path the engines use for timing.
func (fs *FS) ReadAccount(path string, readerNode int) (ReadSplit, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var sp ReadSplit
	f, ok := fs.files[path]
	if !ok {
		return sp, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if readerNode >= 0 && fs.dead[readerNode] {
		return sp, fmt.Errorf("%w: %d", ErrDeadNode, readerNode)
	}
	for _, b := range f.blocks {
		live := fs.liveReplicas(b)
		if len(live) == 0 {
			return sp, fmt.Errorf("%w: %s", ErrUnavailable, path)
		}
		fs.classify(b, live, readerNode, &sp)
	}
	return sp, nil
}

// placeReplicas picks replica nodes following the HDFS policy: the first
// replica on the writer when possible; with racks configured, the second
// replica on a different rack than the first and the third on the same
// rack as the second; remaining replicas (and all replicas in single-rack
// clusters) are placed uniformly at random among unused live nodes. A
// writerNode outside [0, Nodes) — including one past the cluster, e.g. an
// uploader addressed by a stale topology — is an external client: all
// replicas are placed randomly.
func (fs *FS) placeReplicas(writerNode int) []int {
	live := fs.liveNodesLocked()
	if len(live) == 0 {
		panic("dfs: no live nodes")
	}
	want := fs.cfg.Replication
	if want > len(live) {
		want = len(live)
	}
	replicas := make([]int, 0, want)
	if writerNode >= 0 && writerNode < fs.cfg.Nodes && !fs.dead[writerNode] {
		replicas = append(replicas, writerNode)
	}
	return fs.fillReplicaTargets(replicas, want)
}

// fillReplicaTargets extends replicas with live nodes up to want entries,
// applying the staged HDFS rack policy relative to the existing replicas
// (second replica off the first's rack, third on the second's rack) and
// filling the rest uniformly at random. It is the shared target-selection
// policy of fresh writes and of post-failure re-replication, so recovered
// blocks spread exactly like newly written ones. Caller holds the lock.
func (fs *FS) fillReplicaTargets(replicas []int, want int) []int {
	used := map[int]bool{}
	for _, r := range replicas {
		used[r] = true
	}
	var cands []int
	for _, n := range fs.liveNodesLocked() {
		if !used[n] {
			cands = append(cands, n)
		}
	}
	fs.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	pick := func(pred func(n int) bool) bool {
		for _, n := range cands {
			if !used[n] && pred(n) {
				replicas = append(replicas, n)
				used[n] = true
				return true
			}
		}
		return false
	}
	if fs.cfg.RackSize > 0 && len(replicas) > 0 {
		firstRack := fs.RackOf(replicas[0])
		if len(replicas) < want {
			// Second replica off-rack (fall back to any node).
			if !pick(func(n int) bool { return fs.RackOf(n) != firstRack }) {
				pick(func(int) bool { return true })
			}
		}
		if len(replicas) >= 2 && len(replicas) < want {
			// Third replica on the second replica's rack.
			secondRack := fs.RackOf(replicas[1])
			if !pick(func(n int) bool { return fs.RackOf(n) == secondRack }) {
				pick(func(int) bool { return true })
			}
		}
	}
	for len(replicas) < want {
		if !pick(func(int) bool { return true }) {
			break
		}
	}
	return replicas
}

// Read returns the file contents as seen by readerNode, recording read
// bytes per block by distance class. readerNode < 0 means an external
// client (all reads count as remote, attributed to the cluster total
// only).
func (fs *FS) Read(path string, readerNode int) ([]byte, error) {
	data, _, err := fs.ReadTracked(path, readerNode)
	return data, err
}

// ReadTracked is Read plus a report of how the returned bytes split by
// distance from the reader.
func (fs *FS) ReadTracked(path string, readerNode int) ([]byte, ReadSplit, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var sp ReadSplit
	f, ok := fs.files[path]
	if !ok {
		return nil, sp, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if f.virtual {
		return nil, sp, fmt.Errorf("%w: %s", ErrVirtual, path)
	}
	if readerNode >= 0 && fs.dead[readerNode] {
		return nil, sp, fmt.Errorf("%w: %d", ErrDeadNode, readerNode)
	}
	out := make([]byte, 0, f.size)
	for _, b := range f.blocks {
		live := fs.liveReplicas(b)
		if len(live) == 0 {
			return nil, sp, fmt.Errorf("%w: %s", ErrUnavailable, path)
		}
		fs.classify(b, live, readerNode, &sp)
		out = append(out, b.data...)
	}
	return out, sp, nil
}

// Peek returns the file contents without performing any read accounting,
// locality classification or liveness check of the reader. Compute
// backends use it to fetch tile payloads for pure computation, while the
// engine separately replays the read for placement and byte accounting;
// splitting the two is what lets tile math run on worker goroutines while
// the accounting stays deterministic. Blocks whose every replica is dead
// are unavailable, exactly as for Read.
func (fs *FS) Peek(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if f.virtual {
		return nil, fmt.Errorf("%w: %s", ErrVirtual, path)
	}
	out := make([]byte, 0, f.size)
	for _, b := range f.blocks {
		if len(fs.liveReplicas(b)) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrUnavailable, path)
		}
		out = append(out, b.data...)
	}
	return out, nil
}

// Locality reports whether readerNode holds a local replica of every block
// of path. The scheduler uses this to prefer node-local tasks.
func (fs *FS) Locality(path string, readerNode int) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	for _, b := range f.blocks {
		found := false
		for _, r := range fs.liveReplicas(b) {
			if r == readerNode {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}

// ReplicaNodes returns the set of live nodes that hold at least one block
// replica of the file, in ascending order.
func (fs *FS) ReplicaNodes(path string) ([]int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	set := map[int]bool{}
	for _, b := range f.blocks {
		for _, r := range fs.liveReplicas(b) {
			set[r] = true
		}
	}
	nodes := make([]int, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes, nil
}

// Exists reports whether path is present.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the byte size of the file.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return f.size, nil
}

// Delete removes a file. Deleting a missing file is not an error, matching
// the idempotent delete semantics engines rely on during retries.
func (fs *FS) Delete(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, path)
}

// List returns all paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// RecoveryReport summarizes the namenode-driven recovery triggered by one
// node death.
type RecoveryReport struct {
	BlocksLost      int   // blocks whose every replica was on dead nodes
	BlocksRecovered int   // blocks that received at least one new replica
	ReplicasAdded   int   // total new replicas created
	BytesMoved      int64 // bytes copied from surviving sources to receivers
}

// KillNode marks a datanode dead and re-replicates every block that lost a
// replica, using the remaining live copies as sources (namenode-driven
// recovery, as in HDFS). Targets are chosen by the same rack-aware policy
// as fresh writes, spread randomly rather than piling onto low-numbered
// nodes, and each copy charges a read on a surviving source replica
// (rack-local or remote by topology) as well as the replication write on
// the receiver. Blocks whose every replica was on dead nodes become
// unavailable. Files are processed in sorted path order so the recovery
// traffic is deterministic for a given placement history.
func (fs *FS) KillNode(node int) RecoveryReport {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var rep RecoveryReport
	if node < 0 || node >= fs.cfg.Nodes || fs.dead[node] {
		return rep
	}
	fs.dead[node] = true
	liveNodes := len(fs.liveNodesLocked())
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		for _, b := range fs.files[p].blocks {
			lost := false
			for _, r := range b.replicas {
				if r == node {
					lost = true
					break
				}
			}
			if !lost {
				continue
			}
			live := fs.liveReplicas(b)
			if len(live) == 0 {
				rep.BlocksLost++
				continue
			}
			want := fs.cfg.Replication
			if want > liveNodes {
				want = liveNodes
			}
			if len(live) >= want {
				b.replicas = live
				continue
			}
			grown := fs.fillReplicaTargets(append([]int(nil), live...), want)
			if len(grown) > len(live) {
				rep.BlocksRecovered++
			}
			for _, dst := range grown[len(live):] {
				src := live[fs.rng.Intn(len(live))]
				if fs.cfg.RackSize > 0 && fs.RackOf(src) == fs.RackOf(dst) {
					fs.stats[src].RackLocalReadBytes += b.size
					fs.total.RackLocalReadBytes += b.size
				} else {
					fs.stats[src].RemoteReadBytes += b.size
					fs.total.RemoteReadBytes += b.size
				}
				fs.stats[dst].ReplicationBytes += b.size
				fs.total.ReplicationBytes += b.size
				rep.ReplicasAdded++
				rep.BytesMoved += b.size
			}
			b.replicas = grown
		}
	}
	return rep
}

// Reseed replaces the placement random stream with one derived from
// seed. Program-level checkpointing reseeds at every iteration boundary
// so that a run resumed from a checkpoint draws the same placement
// stream as the run that wrote it, independent of how many draws either
// consumed before the boundary.
func (fs *FS) Reseed(seed int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rng = rand.New(rand.NewSource(seed))
}

// MarkDead marks a datanode dead without triggering re-replication or
// accounting. Checkpoint restore uses it to reinstate the failure state
// recorded in a manifest before rehydrating tiles (whose recorded
// placements already reflect any pre-checkpoint recovery).
func (fs *FS) MarkDead(node int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if node >= 0 && node < fs.cfg.Nodes {
		fs.dead[node] = true
	}
}

// BlockReplicas returns the replica node lists of the file's blocks, in
// block order (live and dead replicas alike). Checkpoint manifests
// record these so restore can reproduce placement exactly.
func (fs *FS) BlockReplicas(path string) ([][]int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([][]int, len(f.blocks))
	for i, b := range f.blocks {
		out[i] = append([]int(nil), b.replicas...)
	}
	return out, nil
}

// WritePlaced stores data under path with the given per-block replica
// lists, bypassing placement randomness and write accounting: it is
// pure bookkeeping, the restore half of checkpointing, reconstructing a
// file exactly where the checkpointed run had it. data may be nil for a
// virtual file of the given size. The replica lists must cover
// ceil(size/BlockSize) blocks (minimum one) and be non-empty.
func (fs *FS) WritePlaced(path string, data []byte, size int64, replicas [][]int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	if data != nil {
		size = int64(len(data))
	}
	if size < 0 {
		return fmt.Errorf("dfs: negative size %d for %s", size, path)
	}
	nBlocks := int((size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize)
	if nBlocks == 0 {
		nBlocks = 1
	}
	if len(replicas) != nBlocks {
		return fmt.Errorf("dfs: %s wants %d block replica lists, got %d", path, nBlocks, len(replicas))
	}
	f := &file{size: size, virtual: data == nil}
	for i := 0; i < nBlocks; i++ {
		if len(replicas[i]) == 0 {
			return fmt.Errorf("dfs: %s block %d has no replicas", path, i)
		}
		for _, r := range replicas[i] {
			if r < 0 || r >= fs.cfg.Nodes {
				return fmt.Errorf("dfs: %s block %d replica on unknown node %d", path, i, r)
			}
		}
		off := int64(i) * fs.cfg.BlockSize
		end := off + fs.cfg.BlockSize
		if end > size {
			end = size
		}
		b := &block{size: end - off, replicas: append([]int(nil), replicas[i]...)}
		if data != nil {
			b.data = append([]byte(nil), data[off:end]...)
		}
		f.blocks = append(f.blocks, b)
	}
	fs.files[path] = f
	return nil
}

// NodeAlive reports whether the datanode is live.
func (fs *FS) NodeAlive(node int) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return node >= 0 && node < fs.cfg.Nodes && !fs.dead[node]
}

// Stats returns the per-node counters for node, or the cluster-wide total
// for node < 0.
func (fs *FS) Stats(node int) IOStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if node < 0 {
		return fs.total
	}
	return fs.stats[node]
}

// ResetStats zeroes all I/O counters, keeping file contents. Experiments
// use this between measurement phases.
func (fs *FS) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := range fs.stats {
		fs.stats[i] = IOStats{}
	}
	fs.total = IOStats{}
}

// FileCount returns the number of stored files.
func (fs *FS) FileCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.files)
}

// TotalBytes returns the sum of logical file sizes (not counting replicas).
func (fs *FS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, f := range fs.files {
		n += f.size
	}
	return n
}

func (fs *FS) liveReplicas(b *block) []int {
	var out []int
	for _, r := range b.replicas {
		if !fs.dead[r] {
			out = append(out, r)
		}
	}
	return out
}

func (fs *FS) liveNodesLocked() []int {
	var out []int
	for n := 0; n < fs.cfg.Nodes; n++ {
		if !fs.dead[n] {
			out = append(out, n)
		}
	}
	return out
}
