package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(DefaultConfig(4))
	data := []byte("hello, cumulon")
	if err := fs.Write("/a", data, 0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read mismatch: %q", got)
	}
	sz, err := fs.Size("/a")
	if err != nil || sz != int64(len(data)) {
		t.Fatalf("size %d err %v", sz, err)
	}
}

func TestWriteLocalFirstPlacement(t *testing.T) {
	fs := New(DefaultConfig(8))
	if err := fs.Write("/a", []byte("x"), 5); err != nil {
		t.Fatal(err)
	}
	local, err := fs.Locality("/a", 5)
	if err != nil || !local {
		t.Fatalf("writer node must hold a replica: local=%v err=%v", local, err)
	}
	nodes, err := fs.ReplicaNodes("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("want 3 replicas, got %v", nodes)
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	fs := New(Config{Nodes: 2, Replication: 3, Seed: 1})
	if fs.Replication() != 2 {
		t.Fatalf("replication should clamp to 2, got %d", fs.Replication())
	}
	if err := fs.Write("/a", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	nodes, _ := fs.ReplicaNodes("/a")
	if len(nodes) != 2 {
		t.Fatalf("want 2 replicas, got %v", nodes)
	}
}

func TestLocalVsRemoteAccounting(t *testing.T) {
	fs := New(Config{Nodes: 4, Replication: 1, Seed: 1})
	data := make([]byte, 1000)
	if err := fs.Write("/a", data, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/a", 2); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats(2).LocalReadBytes; got != 1000 {
		t.Fatalf("local read bytes: %d", got)
	}
	if _, err := fs.Read("/a", 3); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats(3).RemoteReadBytes; got != 1000 {
		t.Fatalf("remote read bytes: %d", got)
	}
	tot := fs.Stats(-1)
	if tot.LocalReadBytes != 1000 || tot.RemoteReadBytes != 1000 {
		t.Fatalf("totals: %+v", tot)
	}
}

func TestDuplicateWriteFails(t *testing.T) {
	fs := New(DefaultConfig(3))
	if err := fs.Write("/a", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/a", []byte("y"), 0); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New(DefaultConfig(3))
	if _, err := fs.Read("/nope", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	fs := New(DefaultConfig(3))
	if err := fs.Write("/a", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	fs.Delete("/a")
	fs.Delete("/a")
	if fs.Exists("/a") {
		t.Fatal("file still exists after delete")
	}
}

func TestList(t *testing.T) {
	fs := New(DefaultConfig(3))
	for _, p := range []string{"/m/1", "/m/2", "/n/1"} {
		if err := fs.Write(p, []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("/m/")
	if len(got) != 2 || got[0] != "/m/1" || got[1] != "/m/2" {
		t.Fatalf("list: %v", got)
	}
}

func TestKillNodeReReplicates(t *testing.T) {
	fs := New(Config{Nodes: 5, Replication: 2, Seed: 3})
	if err := fs.Write("/a", []byte("payload"), 1); err != nil {
		t.Fatal(err)
	}
	before, _ := fs.ReplicaNodes("/a")
	fs.KillNode(before[0])
	after, err := fs.ReplicaNodes("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 {
		t.Fatalf("want 2 live replicas after recovery, got %v", after)
	}
	for _, n := range after {
		if n == before[0] {
			t.Fatal("dead node still listed as replica")
		}
	}
	if _, err := fs.Read("/a", 4); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestAllReplicasDeadUnavailable(t *testing.T) {
	fs := New(Config{Nodes: 3, Replication: 1, Seed: 1})
	if err := fs.Write("/a", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	nodes, _ := fs.ReplicaNodes("/a")
	// Kill every node so re-replication has no live target.
	for n := 0; n < 3; n++ {
		_ = nodes
		fs.KillNode(n)
	}
	if fs.NodeAlive(0) {
		t.Fatal("node 0 should be dead")
	}
	// Reading from any node fails: reader nodes themselves are dead, and
	// an external client sees no live replicas.
	if _, err := fs.Read("/a", -1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

func TestDeadWriterRejected(t *testing.T) {
	fs := New(DefaultConfig(3))
	fs.KillNode(1)
	if err := fs.Write("/a", []byte("x"), 1); !errors.Is(err, ErrDeadNode) {
		t.Fatalf("want ErrDeadNode, got %v", err)
	}
	if err := fs.Write("/b", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestMultiBlockFiles(t *testing.T) {
	fs := New(Config{Nodes: 4, Replication: 2, BlockSize: 10, Seed: 7})
	data := make([]byte, 35)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.Write("/big", data, 0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/big", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip mismatch")
	}
}

func TestEmptyFile(t *testing.T) {
	fs := New(DefaultConfig(3))
	if err := fs.Write("/empty", nil, 0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/empty", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read %d bytes", len(got))
	}
}

// Property: whatever is written is read back identically, from any node.
func TestRoundTripProperty(t *testing.T) {
	fs := New(DefaultConfig(6))
	i := 0
	f := func(data []byte, reader uint8) bool {
		i++
		path := fmt.Sprintf("/p/%d", i)
		if err := fs.Write(path, data, int(reader)%6); err != nil {
			return false
		}
		got, err := fs.Read(path, (int(reader)+1)%6)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New(DefaultConfig(8))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20; i++ {
				p := fmt.Sprintf("/c/%d/%d", g, i)
				data := make([]byte, rng.Intn(100)+1)
				if err := fs.Write(p, data, g); err != nil {
					errs <- err
					return
				}
				if _, err := fs.Read(p, (g+i)%8); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if fs.FileCount() != 160 {
		t.Fatalf("file count: %d", fs.FileCount())
	}
}

func TestResetStats(t *testing.T) {
	fs := New(DefaultConfig(3))
	if err := fs.Write("/a", make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	fs.ResetStats()
	tot := fs.Stats(-1)
	if tot.WrittenBytes != 0 || tot.ReplicationBytes != 0 {
		t.Fatalf("stats not reset: %+v", tot)
	}
}

func TestTotalBytes(t *testing.T) {
	fs := New(DefaultConfig(3))
	if err := fs.Write("/a", make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/b", make([]byte, 50), 0); err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytes() != 150 {
		t.Fatalf("total bytes: %d", fs.TotalBytes())
	}
}

func TestVirtualFiles(t *testing.T) {
	fs := New(Config{Nodes: 4, Replication: 2, BlockSize: 100, Seed: 1})
	if err := fs.WriteVirtual("/v", 250, 1); err != nil {
		t.Fatal(err)
	}
	sz, err := fs.Size("/v")
	if err != nil || sz != 250 {
		t.Fatalf("size %d err %v", sz, err)
	}
	if _, err := fs.Read("/v", 0); !errors.Is(err, ErrVirtual) {
		t.Fatalf("want ErrVirtual, got %v", err)
	}
	sp, err := fs.ReadAccount("/v", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Total() != 250 {
		t.Fatalf("accounted %d bytes", sp.Total())
	}
	// Writer-local placement means node 1 holds every block.
	if sp.Local != 250 {
		t.Fatalf("writer node should read locally: %+v", sp)
	}
	if _, err := fs.ReadAccount("/missing", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestReadAccountOnRealFiles(t *testing.T) {
	fs := New(Config{Nodes: 3, Replication: 1, Seed: 2})
	if err := fs.Write("/r", make([]byte, 500), 0); err != nil {
		t.Fatal(err)
	}
	sp, err := fs.ReadAccount("/r", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Remote != 500 {
		t.Fatalf("remote bytes: %+v", sp)
	}
}

func TestVirtualKillNodeReReplicates(t *testing.T) {
	fs := New(Config{Nodes: 4, Replication: 2, Seed: 5})
	if err := fs.WriteVirtual("/v", 1000, 0); err != nil {
		t.Fatal(err)
	}
	fs.KillNode(0)
	nodes, err := fs.ReplicaNodes("/v")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("replicas after recovery: %v", nodes)
	}
	if _, err := fs.ReadAccount("/v", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRackTopology(t *testing.T) {
	fs := New(Config{Nodes: 8, Replication: 3, RackSize: 4, Seed: 1})
	if fs.Racks() != 2 {
		t.Fatalf("racks: %d", fs.Racks())
	}
	if fs.RackOf(3) != 0 || fs.RackOf(4) != 1 || fs.RackOf(-1) != 0 {
		t.Fatal("rack assignment wrong")
	}
	single := New(Config{Nodes: 4, Replication: 2, Seed: 1})
	if single.Racks() != 1 || single.RackOf(3) != 0 {
		t.Fatal("single-rack cluster misconfigured")
	}
}

func TestRackAwarePlacement(t *testing.T) {
	fs := New(Config{Nodes: 8, Replication: 3, RackSize: 4, Seed: 2})
	// HDFS policy: replica 1 on the writer, replica 2 on another rack,
	// replica 3 on replica 2's rack. Check over many files.
	for i := 0; i < 50; i++ {
		path := fmt.Sprintf("/r/%d", i)
		if err := fs.WriteVirtual(path, 100, 1); err != nil {
			t.Fatal(err)
		}
		nodes, err := fs.ReplicaNodes(path)
		if err != nil || len(nodes) != 3 {
			t.Fatalf("replicas: %v err %v", nodes, err)
		}
		racks := map[int]int{}
		for _, n := range nodes {
			racks[fs.RackOf(n)]++
		}
		if len(racks) != 2 {
			t.Fatalf("file %d: replicas span %d racks (want exactly 2): %v", i, len(racks), nodes)
		}
	}
}

func TestRackLocalReadClassification(t *testing.T) {
	fs := New(Config{Nodes: 8, Replication: 1, RackSize: 4, Seed: 3})
	if err := fs.WriteVirtual("/a", 1000, 0); err != nil {
		t.Fatal(err)
	}
	// Node 0 holds the only replica: node 0 reads locally, node 1 (same
	// rack) rack-locally, node 5 (other rack) remotely.
	sp, err := fs.ReadAccount("/a", 0)
	if err != nil || sp.Local != 1000 {
		t.Fatalf("node 0: %+v err %v", sp, err)
	}
	sp, err = fs.ReadAccount("/a", 1)
	if err != nil || sp.RackLocal != 1000 || sp.Remote != 0 {
		t.Fatalf("node 1: %+v err %v", sp, err)
	}
	sp, err = fs.ReadAccount("/a", 5)
	if err != nil || sp.Remote != 1000 || sp.RackLocal != 0 {
		t.Fatalf("node 5: %+v err %v", sp, err)
	}
	st := fs.Stats(1)
	if st.RackLocalReadBytes != 1000 {
		t.Fatalf("rack-local stats: %+v", st)
	}
}

func TestSingleRackHasNoRackLocalReads(t *testing.T) {
	fs := New(Config{Nodes: 4, Replication: 1, Seed: 4})
	if err := fs.WriteVirtual("/a", 100, 0); err != nil {
		t.Fatal(err)
	}
	sp, err := fs.ReadAccount("/a", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.RackLocal != 0 || sp.Remote != 100 {
		t.Fatalf("single-rack split: %+v", sp)
	}
}

func TestExternalWriterPastClusterTreatedAsClient(t *testing.T) {
	fs := New(Config{Nodes: 4, Replication: 2, Seed: 6})
	// A writer node at or past Nodes is an external client, not a crash.
	if err := fs.Write("/ext", make([]byte, 100), 9); err != nil {
		t.Fatal(err)
	}
	nodes, err := fs.ReplicaNodes("/ext")
	if err != nil || len(nodes) != 2 {
		t.Fatalf("replicas: %v err %v", nodes, err)
	}
	for _, n := range nodes {
		if n < 0 || n >= 4 {
			t.Fatalf("replica on nonexistent node %d", n)
		}
	}
	if err := fs.WriteVirtual("/extv", 100, 100); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Read("/ext", 1); err != nil || len(got) != 100 {
		t.Fatalf("read: %d bytes, err %v", len(got), err)
	}
}

func TestKillNodeReportAndSourceCharging(t *testing.T) {
	fs := New(Config{Nodes: 6, Replication: 2, Seed: 8})
	const size = 1000
	if err := fs.WriteVirtual("/a", size, 1); err != nil {
		t.Fatal(err)
	}
	nodes, _ := fs.ReplicaNodes("/a")
	survivor := nodes[1]
	fs.ResetStats()
	rep := fs.KillNode(nodes[0])
	if rep.BlocksRecovered != 1 || rep.ReplicasAdded != 1 || rep.BytesMoved != size {
		t.Fatalf("report: %+v", rep)
	}
	if rep.BlocksLost != 0 {
		t.Fatalf("no block should be lost: %+v", rep)
	}
	// The copy reads size bytes off the surviving source and writes size
	// bytes of replication traffic onto the new holder.
	if got := fs.Stats(survivor).RemoteReadBytes; got != size {
		t.Fatalf("source read bytes on node %d: %d", survivor, got)
	}
	tot := fs.Stats(-1)
	if tot.RemoteReadBytes != size || tot.ReplicationBytes != size {
		t.Fatalf("totals: %+v", tot)
	}
	// Killing an already-dead or out-of-range node is a no-op.
	if rep := fs.KillNode(nodes[0]); rep != (RecoveryReport{}) {
		t.Fatalf("double kill: %+v", rep)
	}
	if rep := fs.KillNode(99); rep != (RecoveryReport{}) {
		t.Fatalf("kill out of range: %+v", rep)
	}
}

func TestKillNodeRackAwareRecovery(t *testing.T) {
	// Replication 2 on 2 racks: after recovery each block's replicas must
	// span both racks again (policy: second replica off the first's rack),
	// and recovery targets must spread rather than pile onto one node.
	fs := New(Config{Nodes: 8, Replication: 2, RackSize: 4, Seed: 9})
	for i := 0; i < 40; i++ {
		if err := fs.WriteVirtual(fmt.Sprintf("/r/%d", i), 100, 2); err != nil {
			t.Fatal(err)
		}
	}
	rep := fs.KillNode(2)
	if rep.BlocksRecovered == 0 || rep.BytesMoved == 0 {
		t.Fatalf("expected recovery work: %+v", rep)
	}
	targets := map[int]int{}
	for i := 0; i < 40; i++ {
		nodes, err := fs.ReplicaNodes(fmt.Sprintf("/r/%d", i))
		if err != nil || len(nodes) != 2 {
			t.Fatalf("file %d replicas: %v err %v", i, nodes, err)
		}
		racks := map[int]bool{}
		for _, n := range nodes {
			racks[fs.RackOf(n)] = true
			targets[n]++
		}
		if len(racks) != 2 {
			t.Fatalf("file %d: recovered replicas on one rack: %v", i, nodes)
		}
	}
	// With 40 blocks and 7 live candidates, an unbiased policy cannot put
	// every recovered replica on the single lowest-numbered live node.
	if targets[0] == 80-40 && len(targets) <= 3 {
		t.Fatalf("recovery piled onto low node ids: %v", targets)
	}
}

func TestKillNodeLostBlocksCounted(t *testing.T) {
	fs := New(Config{Nodes: 3, Replication: 1, Seed: 10})
	if err := fs.WriteVirtual("/only", 500, 1); err != nil {
		t.Fatal(err)
	}
	rep := fs.KillNode(1)
	if rep.BlocksLost != 1 || rep.BlocksRecovered != 0 || rep.BytesMoved != 0 {
		t.Fatalf("report: %+v", rep)
	}
}
